package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BufRelease guards the arena ownership contract at its sharpest edge:
// a buffer obtained from bufpool.Arena.Get is owned by the caller and
// must be handed somewhere — copied into, stored in a frame, passed
// on, or Put back — before control can leave the function. The
// analysis is intraprocedural and optimistic: a variable assigned from
// Get is "held" until the first statement that mentions it again
// (whatever that statement does is assumed to transfer or release
// ownership), and each branch is analysed independently, so the
// findings are the paths where the buffer provably went nowhere: a
// return before any use, a silently discarded Get result, or a held
// variable overwritten by a second Get. The bufpool package itself is
// exempt (its internals juggle raw buffers by design).
var BufRelease = &Analyzer{
	Name: "bufrelease",
	Doc:  "a buffer from bufpool.Arena.Get must be used, stored, or Put before every return path",
	Run:  runBufRelease,
}

func runBufRelease(prog *Program, report Reporter) {
	for _, pkg := range prog.Packages {
		if pkg.Name == "bufpool" {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if fd, ok := n.(*ast.FuncDecl); ok {
					if fd.Body != nil {
						analyzeBufBody(prog, pkg, report, fd.Body)
					}
					return false // function literals are analysed by expr()
				}
				return true
			})
		}
	}
}

func analyzeBufBody(prog *Program, pkg *Package, report Reporter, body *ast.BlockStmt) {
	bs := &bufState{prog: prog, pkg: pkg, report: report, held: map[string]bool{}}
	bs.block(body)
	if !terminates(body) {
		bs.checkEnd(body.Rbrace)
	}
}

type bufState struct {
	prog   *Program
	pkg    *Package
	report Reporter
	held   map[string]bool // var name -> holds an unconsumed Get result
}

func (bs *bufState) clone() *bufState {
	c := &bufState{prog: bs.prog, pkg: bs.pkg, report: bs.report, held: map[string]bool{}}
	for k, v := range bs.held {
		c.held[k] = v
	}
	return c
}

// arenaGet reports whether call is (*bufpool.Arena).Get.
func (bs *bufState) arenaGet(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" {
		return false
	}
	selection, found := bs.pkg.Info.Selections[sel]
	if !found {
		return false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "bufpool" {
		return false
	}
	recv := selection.Recv()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Name() == "Arena"
}

// mention clears every held variable named anywhere in e: whatever the
// statement does with the buffer (copy into it, store it, send it,
// Put it) is assumed to take over its ownership. Descends into
// function literals — a closure capturing the buffer owns it — and
// analyses each literal's own body as a fresh function.
func (bs *bufState) mention(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if bs.held[n.Name] {
				bs.held[n.Name] = false
			}
		case *ast.FuncLit:
			// The literal's body may itself call Get.
			analyzeBufBody(bs.prog, bs.pkg, bs.report, n.Body)
			// Mentions of outer held vars inside it still count.
			ast.Inspect(n.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok && bs.held[id.Name] {
					bs.held[id.Name] = false
				}
				return true
			})
			return false
		}
		return true
	})
}

func (bs *bufState) mentions(es ...ast.Expr) {
	for _, e := range es {
		bs.mention(e)
	}
}

func (bs *bufState) block(b *ast.BlockStmt) {
	for _, st := range b.List {
		bs.stmt(st)
		if terminates(st) {
			return
		}
	}
}

func (bs *bufState) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.AssignStmt:
		bs.mentions(st.Rhs...)
		if len(st.Lhs) == len(st.Rhs) {
			for i, rhs := range st.Rhs {
				call, isCall := rhs.(*ast.CallExpr)
				if !isCall || !bs.arenaGet(call) {
					continue
				}
				id, isIdent := st.Lhs[i].(*ast.Ident)
				if !isIdent {
					continue // stored straight into a field/element: consumed
				}
				if id.Name == "_" {
					bs.report(call.Pos(), "result of Arena.Get discarded: the pooled buffer is leaked to the GC")
					continue
				}
				if bs.held[id.Name] {
					bs.report(st.Pos(), "%s overwritten while still holding an unreleased Arena.Get buffer", id.Name)
				}
				bs.held[id.Name] = true
			}
		}
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok && bs.arenaGet(call) {
			bs.report(call.Pos(), "result of Arena.Get discarded: the pooled buffer is leaked to the GC")
			return
		}
		bs.mention(st.X)
	case *ast.ReturnStmt:
		bs.mentions(st.Results...)
		for name, held := range bs.held {
			if held {
				bs.report(st.Pos(), "return leaks pooled buffer %s: no use, store, or Put between Arena.Get and this return", name)
			}
		}
	case *ast.DeferStmt:
		bs.mention(st.Call)
	case *ast.GoStmt:
		bs.mention(st.Call)
	case *ast.SendStmt:
		bs.mentions(st.Chan, st.Value)
	case *ast.IncDecStmt:
		bs.mention(st.X)
	case *ast.IfStmt:
		if st.Init != nil {
			bs.stmt(st.Init)
		}
		bs.mention(st.Cond)
		then := bs.clone()
		then.block(st.Body)
		if st.Else != nil {
			els := bs.clone()
			els.stmt(st.Else)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			bs.stmt(st.Init)
		}
		bs.mention(st.Cond)
		body := bs.clone()
		body.block(st.Body)
		if st.Post != nil {
			body.stmt(st.Post)
		}
	case *ast.RangeStmt:
		bs.mention(st.X)
		body := bs.clone()
		body.block(st.Body)
	case *ast.SwitchStmt:
		if st.Init != nil {
			bs.stmt(st.Init)
		}
		bs.mention(st.Tag)
		bs.clauses(st.Body)
	case *ast.TypeSwitchStmt:
		bs.clauses(st.Body)
	case *ast.SelectStmt:
		bs.clauses(st.Body)
	case *ast.BlockStmt:
		bs.block(st)
	case *ast.LabeledStmt:
		bs.stmt(st.Stmt)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					bs.mentions(vs.Values...)
				}
			}
		}
	}
}

func (bs *bufState) clauses(body *ast.BlockStmt) {
	for _, c := range body.List {
		branch := bs.clone()
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, s := range c.Body {
				branch.stmt(s)
			}
		case *ast.CommClause:
			if c.Comm != nil {
				branch.stmt(c.Comm)
			}
			for _, s := range c.Body {
				branch.stmt(s)
			}
		}
	}
}

// checkEnd flags a function body that falls off its end with a pooled
// buffer still held on the straight-line path.
func (bs *bufState) checkEnd(rbrace token.Pos) {
	for name, held := range bs.held {
		if held {
			bs.report(rbrace, "function ends still holding pooled buffer %s: no use, store, or Put after Arena.Get", name)
		}
	}
}
