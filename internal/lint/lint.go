package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"sort"
	"strings"

	"fmi/internal/lint/cfg"
)

// Finding is one analyzer report, printed as
// "file:line: [analyzer] message". Suppressed findings (matched by an
// //fmilint:ignore directive) are dropped from Run's result but kept
// by RunDetailed so machine consumers see the full inventory.
type Finding struct {
	Pos        token.Position
	Analyzer   string
	Message    string
	Suppressed bool
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Reporter receives findings from an analyzer run.
type Reporter func(pos token.Pos, format string, args ...any)

// Analyzer is one pluggable check. Run receives the whole Program so
// analyzers can enforce cross-package invariants; per-package checks
// simply iterate prog.Packages.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(prog *Program, report Reporter)
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{TraceKind, LockHeld, FaultErr, SimTime, BufRelease, StaleView, Determinism, LockOrder}
}

// IgnoreDirective is the suppression marker grammar:
//
//	//fmilint:ignore <analyzer> <reason>
//
// On (or immediately above) a flagged line it suppresses that line's
// findings for the named analyzer; placed before the package clause it
// suppresses the analyzer for the whole file. The reason is mandatory:
// a suppression without a recorded justification is itself a finding.
const IgnoreDirective = "//fmilint:ignore"

type directive struct {
	pos      token.Position
	analyzer string
	reason   string
	fileWide bool
}

// collectDirectives parses every //fmilint:ignore comment in the
// program. Malformed directives (missing analyzer or reason) and
// directives naming an unknown analyzer are reported under the
// reserved analyzer name "fmilint".
func collectDirectives(prog *Program, known map[string]bool, report Reporter) []directive {
	var dirs []directive
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			pkgLine := prog.Fset.Position(f.Package).Line
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, IgnoreDirective) {
						continue
					}
					rest := strings.TrimPrefix(c.Text, IgnoreDirective)
					fields := strings.Fields(rest)
					pos := prog.Fset.Position(c.Pos())
					if len(fields) < 2 {
						report(c.Pos(), "malformed %s directive: need \"%s <analyzer> <reason>\"", IgnoreDirective, IgnoreDirective)
						continue
					}
					if !known[fields[0]] {
						report(c.Pos(), "ignore directive names unknown analyzer %q", fields[0])
						continue
					}
					dirs = append(dirs, directive{
						pos:      pos,
						analyzer: fields[0],
						reason:   strings.Join(fields[1:], " "),
						fileWide: pos.Line < pkgLine,
					})
				}
			}
		}
	}
	return dirs
}

func (d directive) suppresses(f Finding) bool {
	if d.analyzer != f.Analyzer || d.pos.Filename != f.Pos.Filename {
		return false
	}
	if d.fileWide {
		return true
	}
	return d.pos.Line == f.Pos.Line || d.pos.Line == f.Pos.Line-1
}

// RunDetailed executes the analyzers over the program and returns
// every finding, sorted by position: analyzer findings with
// Suppressed marked where an //fmilint:ignore directive matched,
// malformed-directive findings, and a stale-directive finding (under
// the reserved "fmilint" name) for every well-formed directive whose
// analyzer no longer reports anything at its site — a suppression
// that outlives its finding is inventory rot, and silently keeping it
// would hide the next real finding that lands on that line.
func RunDetailed(prog *Program, analyzers []*Analyzer) []Finding {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var findings []Finding
	reporterFor := func(name string) Reporter {
		return func(pos token.Pos, format string, args ...any) {
			findings = append(findings, Finding{
				Pos:      prog.Fset.Position(pos),
				Analyzer: name,
				Message:  fmt.Sprintf(format, args...),
			})
		}
	}

	dirs := collectDirectives(prog, known, reporterFor("fmilint"))
	for _, a := range analyzers {
		a.Run(prog, reporterFor(a.Name))
	}

	used := make([]bool, len(dirs))
	for i := range findings {
		f := &findings[i]
		if f.Analyzer == "fmilint" {
			continue // directive hygiene findings cannot self-suppress
		}
		for di, d := range dirs {
			if d.suppresses(*f) {
				f.Suppressed = true
				used[di] = true
			}
		}
	}
	for di, d := range dirs {
		if !used[di] {
			findings = append(findings, Finding{
				Pos:      d.pos,
				Analyzer: "fmilint",
				Message:  fmt.Sprintf("stale //fmilint:ignore directive: %s no longer reports at this site — remove it", d.analyzer),
			})
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// Run executes the analyzers and returns only the findings that
// survive suppression, sorted by position.
func Run(prog *Program, analyzers []*Analyzer) []Finding {
	var kept []Finding
	for _, f := range RunDetailed(prog, analyzers) {
		if !f.Suppressed {
			kept = append(kept, f)
		}
	}
	return kept
}

// Exit codes returned by Main.
const (
	ExitClean    = 0 // no findings
	ExitFindings = 1 // at least one finding survived suppression
	ExitLoadErr  = 2 // the tree failed to load or type-check
)

// jsonFinding is the machine-readable shape of one finding, emitted
// by `fmilint -json` for CI artifacts and tooling.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

type jsonReport struct {
	Module       string        `json:"module,omitempty"`
	Error        string        `json:"error,omitempty"`
	Findings     []jsonFinding `json:"findings"`
	Unsuppressed int           `json:"unsuppressed"`
}

// Main is the fmilint command body: load the module rooted at root
// (a trailing "/..." is accepted and ignored, so "fmilint ./..."
// reads naturally), run the full suite, print findings to out, and
// return the process exit code. With jsonOut set the report is one
// JSON object carrying every finding — suppressed ones included, so
// the suppression inventory is auditable — while the exit code still
// reflects only unsuppressed findings.
func Main(root string, out io.Writer, jsonOut bool) int {
	root = strings.TrimSuffix(root, "...")
	root = strings.TrimSuffix(root, "/")
	if root == "" {
		root = "."
	}
	prog, err := LoadModule(root)
	if err != nil {
		if jsonOut {
			writeJSON(out, jsonReport{Error: err.Error(), Findings: []jsonFinding{}})
		} else {
			fmt.Fprintf(out, "fmilint: %v\n", err)
		}
		return ExitLoadErr
	}
	if jsonOut {
		all := RunDetailed(prog, All())
		rep := jsonReport{Module: prog.Module, Findings: []jsonFinding{}}
		for _, f := range all {
			rep.Findings = append(rep.Findings, jsonFinding{
				File:       f.Pos.Filename,
				Line:       f.Pos.Line,
				Analyzer:   f.Analyzer,
				Message:    f.Message,
				Suppressed: f.Suppressed,
			})
			if !f.Suppressed {
				rep.Unsuppressed++
			}
		}
		writeJSON(out, rep)
		if rep.Unsuppressed > 0 {
			return ExitFindings
		}
		return ExitClean
	}
	findings := Run(prog, All())
	for _, f := range findings {
		fmt.Fprintln(out, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(out, "fmilint: %d finding(s)\n", len(findings))
		return ExitFindings
	}
	return ExitClean
}

func writeJSON(out io.Writer, rep jsonReport) {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	enc.Encode(rep)
}

// exprString renders a (small) expression back to source, used to key
// lock receivers and to name flagged expressions in messages. The
// canonical renderer lives in the cfg package so the dataflow layer
// and the analyzers agree on keys.
func exprString(fset *token.FileSet, e ast.Expr) string {
	return cfg.ExprString(e)
}
