package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"sort"
	"strings"
)

// Finding is one analyzer report, printed as
// "file:line: [analyzer] message".
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Reporter receives findings from an analyzer run.
type Reporter func(pos token.Pos, format string, args ...any)

// Analyzer is one pluggable check. Run receives the whole Program so
// analyzers can enforce cross-package invariants; per-package checks
// simply iterate prog.Packages.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(prog *Program, report Reporter)
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{TraceKind, LockHeld, FaultErr, SimTime, BufRelease, StaleView}
}

// IgnoreDirective is the suppression marker grammar:
//
//	//fmilint:ignore <analyzer> <reason>
//
// On (or immediately above) a flagged line it suppresses that line's
// findings for the named analyzer; placed before the package clause it
// suppresses the analyzer for the whole file. The reason is mandatory:
// a suppression without a recorded justification is itself a finding.
const IgnoreDirective = "//fmilint:ignore"

type directive struct {
	pos      token.Position
	analyzer string
	reason   string
	fileWide bool
}

// collectDirectives parses every //fmilint:ignore comment in the
// program. Malformed directives (missing analyzer or reason) and
// directives naming an unknown analyzer are reported under the
// reserved analyzer name "fmilint".
func collectDirectives(prog *Program, known map[string]bool, report Reporter) []directive {
	var dirs []directive
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			pkgLine := prog.Fset.Position(f.Package).Line
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, IgnoreDirective) {
						continue
					}
					rest := strings.TrimPrefix(c.Text, IgnoreDirective)
					fields := strings.Fields(rest)
					pos := prog.Fset.Position(c.Pos())
					if len(fields) < 2 {
						report(c.Pos(), "malformed %s directive: need \"%s <analyzer> <reason>\"", IgnoreDirective, IgnoreDirective)
						continue
					}
					if !known[fields[0]] {
						report(c.Pos(), "ignore directive names unknown analyzer %q", fields[0])
						continue
					}
					dirs = append(dirs, directive{
						pos:      pos,
						analyzer: fields[0],
						reason:   strings.Join(fields[1:], " "),
						fileWide: pos.Line < pkgLine,
					})
				}
			}
		}
	}
	return dirs
}

func (d directive) suppresses(f Finding) bool {
	if d.analyzer != f.Analyzer || d.pos.Filename != f.Pos.Filename {
		return false
	}
	if d.fileWide {
		return true
	}
	return d.pos.Line == f.Pos.Line || d.pos.Line == f.Pos.Line-1
}

// Run executes the analyzers over the program and returns the
// surviving findings, sorted by position. Suppressed findings are
// dropped; malformed suppressions are returned as findings.
func Run(prog *Program, analyzers []*Analyzer) []Finding {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var findings []Finding
	reporterFor := func(name string) Reporter {
		return func(pos token.Pos, format string, args ...any) {
			findings = append(findings, Finding{
				Pos:      prog.Fset.Position(pos),
				Analyzer: name,
				Message:  fmt.Sprintf(format, args...),
			})
		}
	}

	dirs := collectDirectives(prog, known, reporterFor("fmilint"))
	for _, a := range analyzers {
		a.Run(prog, reporterFor(a.Name))
	}

	kept := findings[:0]
outer:
	for _, f := range findings {
		if f.Analyzer != "fmilint" {
			for _, d := range dirs {
				if d.suppresses(f) {
					continue outer
				}
			}
		}
		kept = append(kept, f)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}

// Exit codes returned by Main.
const (
	ExitClean    = 0 // no findings
	ExitFindings = 1 // at least one finding survived suppression
	ExitLoadErr  = 2 // the tree failed to load or type-check
)

// Main is the fmilint command body: load the module rooted at root
// (a trailing "/..." is accepted and ignored, so "fmilint ./..."
// reads naturally), run the full suite, print findings to out, and
// return the process exit code.
func Main(root string, out io.Writer) int {
	root = strings.TrimSuffix(root, "...")
	root = strings.TrimSuffix(root, "/")
	if root == "" {
		root = "."
	}
	prog, err := LoadModule(root)
	if err != nil {
		fmt.Fprintf(out, "fmilint: %v\n", err)
		return ExitLoadErr
	}
	findings := Run(prog, All())
	for _, f := range findings {
		fmt.Fprintln(out, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(out, "fmilint: %d finding(s)\n", len(findings))
		return ExitFindings
	}
	return ExitClean
}

// exprString renders a (small) expression back to source, used to key
// lock receivers and to name flagged expressions in messages.
func exprString(fset *token.FileSet, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(fset, e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(fset, e.X)
	case *ast.IndexExpr:
		return exprString(fset, e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(fset, e.Fun) + "(...)"
	case *ast.StarExpr:
		return "*" + exprString(fset, e.X)
	case *ast.UnaryExpr:
		return e.Op.String() + exprString(fset, e.X)
	default:
		return fmt.Sprintf("%T", e)
	}
}
