package lint

import (
	"go/ast"
	"go/types"

	"fmi/internal/lint/cfg"
)

// chanFieldCaps builds (once per program) the whole-program table of
// struct fields of channel type whose every creation site is a
// make(chan T, N) with a constant N. Buffered channels stored in
// struct fields routinely cross function boundaries — resize fence
// waiters are made in JoinResize and sent to in commitResize — so
// intraprocedural const-propagation alone cannot prove their sends
// non-blocking; this table is the interprocedural complement.
//
// A field earns an entry only when the analysis sees every way an
// instance can exist with that field set:
//
//   - every composite literal of the struct assigns the field a
//     constant-capacity make (a literal omitting the field, a T{}
//     zero value, or a new(T) leaves it nil, which blocks forever);
//   - every `x.field = ...` assignment is such a make.
//
// Anything else — a non-constant capacity, assignment from another
// channel, multi-value assignment — poisons the field to unknown.
// With several make sites the smallest capacity wins.
func (prog *Program) chanFieldCaps() map[*types.Var]int {
	if prog.fieldCaps != nil {
		return prog.fieldCaps
	}
	caps := map[*types.Var]int{}
	poison := map[*types.Var]bool{}
	note := func(field *types.Var, capN int, known bool) {
		if field == nil {
			return
		}
		if !known {
			poison[field] = true
			delete(caps, field)
			return
		}
		if poison[field] {
			return
		}
		if old, seen := caps[field]; !seen || capN < old {
			caps[field] = capN
		}
	}
	isChanField := func(field *types.Var) bool {
		if field == nil {
			return false
		}
		_, ok := field.Type().Underlying().(*types.Chan)
		return ok
	}
	poisonAllChanFields := func(st *types.Struct) {
		for i := 0; i < st.NumFields(); i++ {
			if f := st.Field(i); isChanField(f) {
				note(f, 0, false)
			}
		}
	}

	for _, pkg := range prog.Packages {
		info := pkg.Info
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CompositeLit:
					tv, ok := info.Types[n]
					if !ok {
						return true
					}
					st, ok := tv.Type.Underlying().(*types.Struct)
					if !ok {
						return true
					}
					assigned := map[*types.Var]bool{}
					for i, elt := range n.Elts {
						var field *types.Var
						var value ast.Expr
						if kv, isKV := elt.(*ast.KeyValueExpr); isKV {
							if id, isID := kv.Key.(*ast.Ident); isID {
								field, _ = info.Uses[id].(*types.Var)
							}
							value = kv.Value
						} else if i < st.NumFields() {
							field = st.Field(i)
							value = elt
						}
						if !isChanField(field) {
							continue
						}
						assigned[field] = true
						capN, known := cfg.MakeChanCap(info, value)
						note(field, capN, known)
					}
					// A literal that leaves a chan field out leaves it
					// nil: no capacity claim can survive that.
					for i := 0; i < st.NumFields(); i++ {
						if f := st.Field(i); isChanField(f) && !assigned[f] {
							note(f, 0, false)
						}
					}
				case *ast.CallExpr:
					// new(T) zeroes every field.
					if id, isID := n.Fun.(*ast.Ident); isID && id.Name == "new" && len(n.Args) == 1 {
						if b, isB := info.Uses[id].(*types.Builtin); isB && b.Name() == "new" {
							if tv, ok := info.Types[n.Args[0]]; ok {
								if st, isStruct := tv.Type.Underlying().(*types.Struct); isStruct {
									poisonAllChanFields(st)
								}
							}
						}
					}
				case *ast.AssignStmt:
					paired := len(n.Lhs) == len(n.Rhs)
					for i, lhs := range n.Lhs {
						sel, isSel := ast.Unparen(lhs).(*ast.SelectorExpr)
						if !isSel {
							continue
						}
						selection, found := info.Selections[sel]
						if !found || selection.Kind() != types.FieldVal {
							continue
						}
						field, _ := selection.Obj().(*types.Var)
						if !isChanField(field) {
							continue
						}
						if !paired {
							note(field, 0, false)
							continue
						}
						capN, known := cfg.MakeChanCap(info, n.Rhs[i])
						note(field, capN, known)
					}
				}
				return true
			})
		}
	}
	prog.fieldCaps = caps
	return caps
}
