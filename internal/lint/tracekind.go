package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// TraceKind enforces the trace-timeline invariant: every event kind
// that reaches the recorder must be one of the Kind constants declared
// in the trace package, and every declared constant must actually be
// emitted by runtime code. The JSONL timeline is the ground truth the
// paper's recovery figures are reconstructed from — a raw string
// literal smuggles an unregistered kind past every consumer, and a
// never-emitted kind is dead vocabulary that rots.
var TraceKind = &Analyzer{
	Name: "tracekind",
	Doc:  "trace.Kind sites must use declared constants; declared kinds must be emitted",
	Run:  runTraceKind,
}

// findKindType locates the package named "trace" that defines
// `type Kind string` and returns the package and the named type.
func findKindType(prog *Program) (*Package, *types.Named) {
	for _, pkg := range prog.Packages {
		if pkg.Name != "trace" {
			continue
		}
		obj := pkg.Types.Scope().Lookup("Kind")
		tn, ok := obj.(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if basic, ok := named.Underlying().(*types.Basic); ok && basic.Kind() == types.String {
			return pkg, named
		}
	}
	return nil, nil
}

func runTraceKind(prog *Program, report Reporter) {
	tracePkg, kindType := findKindType(prog)
	if kindType == nil {
		return // nothing to check against
	}

	// Declared kinds: package-level constants of type Kind in trace.
	declared := map[*types.Const]token.Pos{}
	scope := tracePkg.Types.Scope()
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), kindType) {
			declared[c] = c.Pos()
		}
	}

	used := map[*types.Const]bool{}
	for _, pkg := range prog.Packages {
		if pkg == tracePkg {
			// The declaring package may mention its own constants (the
			// Kinds registry, String methods); that is not emission.
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.Ident:
					if c, ok := pkg.Info.Uses[n].(*types.Const); ok {
						if _, isKind := declared[c]; isKind {
							used[c] = true
						}
					}
				case *ast.BasicLit:
					if n.Kind != token.STRING {
						return true
					}
					tv, ok := pkg.Info.Types[n]
					if ok && types.Identical(tv.Type, kindType) {
						report(n.Pos(), "raw trace kind %s; use a declared trace.Kind constant", n.Value)
					}
				case *ast.CallExpr:
					// Explicit conversion trace.Kind("...").
					if len(n.Args) != 1 {
						return true
					}
					tv, ok := pkg.Info.Types[n.Fun]
					if !ok || !tv.IsType() || !types.Identical(tv.Type, kindType) {
						return true
					}
					if lit, ok := n.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
						report(n.Pos(), "raw trace kind %s; use a declared trace.Kind constant", lit.Value)
						return false // the inner literal is already reported here
					}
				}
				return true
			})
		}
	}

	for c, pos := range declared {
		if !used[c] {
			report(pos, "trace kind %s (%s) is declared but never emitted", c.Name(), c.Val())
		}
	}
}
