// Package cluster trips the simtime analyzer so Main returns the
// findings exit code.
package cluster

import "time"

// Tick reads the wall clock directly.
func Tick() time.Time { return time.Now() }
