module exitfindings

go 1.22
