module exitclean

go 1.22
