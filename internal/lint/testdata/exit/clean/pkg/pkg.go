// Package pkg has nothing for any analyzer to object to.
package pkg

// Add is plain arithmetic.
func Add(a, b int) int { return a + b }
