module exitbadtype

go 1.22
