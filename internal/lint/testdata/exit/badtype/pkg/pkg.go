// Package pkg fails to type-check so Main returns the load-error exit
// code.
package pkg

// Broken assigns a string to an int.
var Broken int = "not an int"
