module detfindings

go 1.22
