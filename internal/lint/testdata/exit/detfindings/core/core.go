// Package core trips the determinism analyzer: one unsuppressed
// map-order finding, plus one suppressed global-rand finding so the
// JSON report carries a suppressed entry.
package core

import "math/rand"

// Comm mimes the communicator's send surface.
type Comm struct{}

// Send carries a payload off-rank.
func (Comm) Send(dest int, p []byte) {}

// Fanout sends in map order.
func Fanout(c Comm, m map[int][]byte) {
	for k, v := range m {
		c.Send(k, v)
	}
}

// Jitter draws from the global source, with a recorded justification.
func Jitter() int {
	//fmilint:ignore determinism fixture: suppressed finding for the JSON inventory
	return rand.Intn(8)
}
