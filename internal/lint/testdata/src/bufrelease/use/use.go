// Package use exercises the bufrelease analyzer: returns that leak a
// just-acquired pooled buffer, discarded Get results, and held buffers
// overwritten by a second Get are findings. The clean functions pin
// the analyzer's tolerance for the correct ownership hand-offs: copy
// into the buffer, store it in a frame, Put it back, defer the Put,
// send it to a channel, or capture it in a closure.
package use

import (
	"errors"

	"bufrelease/bufpool"
)

type frame struct{ data []byte }

func cleanStore(pool *bufpool.Arena, n int) *frame {
	buf := pool.Get(n)
	return &frame{data: buf}
}

func cleanCopyThenPut(pool *bufpool.Arena, src []byte) {
	buf := pool.Get(len(src))
	copy(buf, src)
	pool.Put(buf)
}

func cleanDeferPut(pool *bufpool.Arena, src []byte) error {
	buf := pool.Get(len(src))
	defer pool.Put(buf)
	if len(src) == 0 {
		return errors.New("empty")
	}
	copy(buf, src)
	return nil
}

func cleanFieldTarget(pool *bufpool.Arena, f *frame, n int) {
	// Stored straight into a field: consumed at the assignment.
	f.data = pool.Get(n)
}

func cleanChannelHandoff(pool *bufpool.Arena, out chan<- []byte, n int) {
	buf := pool.Get(n)
	out <- buf
}

func cleanClosureCapture(pool *bufpool.Arena, n int) func() []byte {
	buf := pool.Get(n)
	return func() []byte { return buf }
}

func cleanBranchRelease(pool *bufpool.Arena, n int, keep bool) []byte {
	buf := pool.Get(n)
	if !keep {
		pool.Put(buf)
		return nil
	}
	return buf
}

func leakEarlyReturn(pool *bufpool.Arena, src []byte, bad bool) error {
	buf := pool.Get(len(src))
	if bad {
		return errors.New("bailed with the buffer held") // want "return leaks pooled buffer buf"
	}
	copy(buf, src)
	pool.Put(buf)
	return nil
}

func leakDiscardBare(pool *bufpool.Arena, n int) {
	pool.Get(n) // want "result of Arena.Get discarded"
}

func leakDiscardBlank(pool *bufpool.Arena, n int) {
	_ = pool.Get(n) // want "result of Arena.Get discarded"
}

func leakDoubleGet(pool *bufpool.Arena, n int) []byte {
	buf := pool.Get(n)
	buf = pool.Get(2 * n) // want "buf overwritten while still holding"
	return buf
}

func leakSelectBranch(pool *bufpool.Arena, done <-chan struct{}, out chan<- []byte, n int) error {
	buf := pool.Get(n)
	select {
	case out <- buf:
		return nil
	case <-done:
		return errors.New("cancelled with the buffer held") // want "return leaks pooled buffer buf"
	}
}

func leakInClosure(pool *bufpool.Arena, n int) func() error {
	return func() error {
		buf := pool.Get(n)
		if n > 1 {
			return errors.New("closure bailed") // want "return leaks pooled buffer buf"
		}
		pool.Put(buf)
		return nil
	}
}
