// Package use exercises the bufrelease analyzer: returns that leak a
// just-acquired pooled buffer, discarded Get results, and held buffers
// overwritten by a second Get are findings. The clean functions pin
// the analyzer's tolerance for the correct ownership hand-offs: copy
// into the buffer, store it in a frame, Put it back, defer the Put,
// send it to a channel, or capture it in a closure.
package use

import (
	"errors"

	"bufrelease/bufpool"
)

type frame struct{ data []byte }

func cleanStore(pool *bufpool.Arena, n int) *frame {
	buf := pool.Get(n)
	return &frame{data: buf}
}

func cleanCopyThenPut(pool *bufpool.Arena, src []byte) {
	buf := pool.Get(len(src))
	copy(buf, src)
	pool.Put(buf)
}

func cleanDeferPut(pool *bufpool.Arena, src []byte) error {
	buf := pool.Get(len(src))
	defer pool.Put(buf)
	if len(src) == 0 {
		return errors.New("empty")
	}
	copy(buf, src)
	return nil
}

func cleanFieldTarget(pool *bufpool.Arena, f *frame, n int) {
	// Stored straight into a field: consumed at the assignment.
	f.data = pool.Get(n)
}

func cleanChannelHandoff(pool *bufpool.Arena, out chan<- []byte, n int) {
	buf := pool.Get(n)
	out <- buf
}

func cleanClosureCapture(pool *bufpool.Arena, n int) func() []byte {
	buf := pool.Get(n)
	return func() []byte { return buf }
}

func cleanBranchRelease(pool *bufpool.Arena, n int, keep bool) []byte {
	buf := pool.Get(n)
	if !keep {
		pool.Put(buf)
		return nil
	}
	return buf
}

func leakEarlyReturn(pool *bufpool.Arena, src []byte, bad bool) error {
	buf := pool.Get(len(src))
	if bad {
		return errors.New("bailed with the buffer held") // want "return leaks pooled buffer buf"
	}
	copy(buf, src)
	pool.Put(buf)
	return nil
}

func leakDiscardBare(pool *bufpool.Arena, n int) {
	pool.Get(n) // want "result of Arena.Get discarded"
}

func leakDiscardBlank(pool *bufpool.Arena, n int) {
	_ = pool.Get(n) // want "result of Arena.Get discarded"
}

func leakDoubleGet(pool *bufpool.Arena, n int) []byte {
	buf := pool.Get(n)
	buf = pool.Get(2 * n) // want "buf overwritten while still holding"
	return buf
}

func leakSelectBranch(pool *bufpool.Arena, done <-chan struct{}, out chan<- []byte, n int) error {
	buf := pool.Get(n)
	select {
	case out <- buf:
		return nil
	case <-done:
		return errors.New("cancelled with the buffer held") // want "return leaks pooled buffer buf"
	}
}

func leakInClosure(pool *bufpool.Arena, n int) func() error {
	return func() error {
		buf := pool.Get(n)
		if n > 1 {
			return errors.New("closure bailed") // want "return leaks pooled buffer buf"
		}
		pool.Put(buf)
		return nil
	}
}

// --- ring-slot ownership (ISSUE 10): the SPSC fast path hands a
// pooled frame to a ring slot, and every refusal path (full ring,
// poisoned ring) must either retry or return the frame itself. The
// miniature ring below mirrors the transport's contract: publish
// transfers ownership to the consumer; a refused publish leaves it
// with the producer.

type msgRing struct {
	slots    []frame
	poisoned bool
}

func (r *msgRing) hasSpace() bool     { return len(r.slots) > 0 }
func (r *msgRing) publish(buf []byte) { r.slots[0].data = buf }

func cleanRingSlotStore(pool *bufpool.Arena, r *msgRing, n int) {
	// Consumed at the slot assignment: the consumer side releases it.
	r.slots[0].data = pool.Get(n)
}

func cleanRingPoisonSelfDrain(pool *bufpool.Arena, r *msgRing, src []byte) bool {
	buf := pool.Get(len(src))
	copy(buf, src)
	if r.poisoned {
		// Producer racing the poison drains its own frame.
		pool.Put(buf)
		return false
	}
	r.publish(buf)
	return true
}

func leakRingFullBail(pool *bufpool.Arena, r *msgRing, src []byte) error {
	buf := pool.Get(len(src))
	if !r.hasSpace() {
		return errors.New("ring full") // want "return leaks pooled buffer buf"
	}
	copy(buf, src)
	r.publish(buf)
	return nil
}

func leakRingPoisonDrop(pool *bufpool.Arena, r *msgRing, src []byte) bool {
	buf := pool.Get(len(src))
	if r.poisoned {
		return false // want "return leaks pooled buffer buf"
	}
	copy(buf, src)
	r.publish(buf)
	return true
}
