// Package bufpool is a miniature of the real fmi/internal/bufpool
// package: just enough surface (the Arena type with Get/Put) for the
// bufrelease analyzer to resolve against.
package bufpool

// Arena is a stand-in buffer pool.
type Arena struct{}

// Get returns a buffer of length n.
func (*Arena) Get(n int) []byte { return make([]byte, n) }

// Put returns buf to the arena.
func (*Arena) Put(buf []byte) { _ = buf }
