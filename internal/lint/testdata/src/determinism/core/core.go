// Package core exercises the determinism analyzer: map-iteration
// order escaping into send-like sinks, the process-global math/rand
// source, and selects whose comm cases are provably buffered. The
// package is named core because the analyzer scopes itself to the
// code that re-executes under replay/lockstep.
package core

import (
	"math/rand"
	"sort"
)

// Comm mimics the communicator surface: Send-family method names are
// the analyzer's sink set.
type Comm struct{}

func (Comm) Send(dest int, p []byte)            {}
func (Comm) Isend(dest int, p []byte)           {}
func (Comm) Sendrecv(dest int, p []byte) []byte { return nil }

// Recorder mimes the trace recorder: Add/AddView count as sinks only
// on a receiver type actually named Recorder.
type Recorder struct{}

func (*Recorder) Add(k string, v []byte)  {}
func (*Recorder) AddView(k string, n int) {}

// Ledger has the same method names but is not a Recorder, so its
// Add calls are not sinks.
type Ledger struct{}

func (*Ledger) Add(k string, v []byte) {}

// Jobs mimes the job service.
type Jobs struct{}

func (Jobs) Submit(payload string) {}

// --- rule 1: map-range order escaping into sends ---

func mapKeyToSend(c Comm, m map[int][]byte) {
	for k, v := range m {
		c.Send(k, v) // want "value derived from ranging over map m reaches c.Send"
	}
}

func mapValueToRecorder(r *Recorder, m map[string][]byte) {
	for k, v := range m {
		r.Add(k, v) // want "ranging over map m reaches r.Add"
	}
}

func mapToAddView(r *Recorder, views map[string]int) {
	for name, n := range views {
		r.AddView(name, n) // want "ranging over map views reaches r.AddView"
	}
}

func mapToSubmit(j Jobs, tasks map[string]bool) {
	for name := range tasks {
		j.Submit(name) // want "ranging over map tasks reaches j.Submit"
	}
}

func mapToChannelSend(out chan string, m map[string]int) {
	for k := range m {
		out <- k // want "ranging over map m reaches a channel send"
	}
}

func derivedTaint(c Comm, m map[int][]byte) {
	for k := range m {
		dest := k + 1
		c.Isend(dest, nil) // want "ranging over map m reaches c.Isend"
	}
}

// notARecorderClean: Add on a non-Recorder receiver is not a sink.
func notARecorderClean(l *Ledger, m map[string][]byte) {
	for k, v := range m {
		l.Add(k, v)
	}
}

// sortedKeysClean is the prescribed fix: collect, sort, then send
// from the slice range.
func sortedKeysClean(c Comm, m map[int][]byte) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		c.Send(k, m[k])
	}
}

// stashAndSendAfterClean documents the analyzer's tolerance: a value
// escaping the loop body and sent afterwards is out of reach of the
// per-body taint pass.
func stashAndSendAfterClean(c Comm, m map[int][]byte) {
	var last int
	for k := range m {
		last = k
	}
	c.Send(last, nil)
}

// --- rule 2: process-global math/rand ---

func globalRand() int {
	return rand.Intn(64) // want "math/rand.Intn draws from the process-global source"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "math/rand.Shuffle draws from the process-global source"
}

// seededRandClean is the prescribed fix: an explicit rank-seeded
// source. The constructors themselves are exempt.
func seededRandClean(rank int64) int {
	r := rand.New(rand.NewSource(rank))
	return r.Intn(64)
}

// --- rule 3: multi-ready selects on buffered channels ---

func bufferedSelect() int {
	a := make(chan int, 1)
	b := make(chan int, 1)
	a <- 1
	b <- 2
	select { // want "select has 2 comm cases on provably-buffered channels"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func unbufferedSelectClean(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func oneBufferedClean(b chan int) int {
	a := make(chan int, 1)
	a <- 1
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// pair carries two channels whose every construction site uses a
// constant capacity, so the whole-program field-capacity table proves
// both comm cases buffered.
type pair struct {
	acks chan int
	errs chan int
}

func newPair() *pair {
	return &pair{acks: make(chan int, 4), errs: make(chan int, 4)}
}

func (p *pair) drain() int {
	select { // want "select has 2 comm cases on provably-buffered channels"
	case v := <-p.acks:
		return v
	case v := <-p.errs:
		return v
	}
}

// --- AnySource slow path: per-source lane iteration (ISSUE 10) ---
// The sharded matcher keeps one lane per source rank; an ANY_SOURCE
// probe must visit lanes in ascending rank order or two replicas can
// match different senders for the same receive under replay.

type lane struct{ pending []byte }

func anySourceMapOrder(c Comm, lanes map[int]*lane) {
	for src, ln := range lanes {
		c.Send(src, ln.pending) // want "ranging over map lanes reaches c.Send"
	}
}

// anySourceRankOrderClean pins the prescribed slow path: snapshot the
// source ranks, sort ascending, then probe each lane in rank order.
func anySourceRankOrderClean(c Comm, lanes map[int]*lane) {
	ranks := make([]int, 0, len(lanes))
	for r := range lanes {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		c.Send(r, lanes[r].pending)
	}
}
