// Package order exercises the lockorder analyzer: direct two-lock
// inversions, inversions discovered interprocedurally through the
// static call graph, self-edges from nesting two instances of one
// type, package-level mutexes, and the clean hierarchical pattern.
// Lock identities are type-qualified, so every *A shares the node
// "order.A.mu".
package order

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.RWMutex }

// lockAThenB and lockBThenA form the textbook inversion. The deferred
// unlocks matter: a.mu stays held at the b.mu acquisition even though
// the release is already scheduled. RLock shares the identity of its
// write side.
func lockAThenB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want "lock order inversion: order.B.mu acquired while order.A.mu is held"
	b.mu.Unlock()
}

func lockBThenA(a *A, b *B) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	a.mu.Lock() // want "lock order inversion: order.A.mu acquired while order.B.mu is held"
	a.mu.Unlock()
}

// Interprocedural: lockCThenCallHelper never touches d.mu itself, but
// the helper it calls under c.mu does, and lockDThenC closes the
// cycle directly.
type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

func helperLockD(d *D) {
	d.mu.Lock()
	d.mu.Unlock()
}

func lockCThenCallHelper(c *C, d *D) {
	c.mu.Lock()
	helperLockD(d) // want "lock order inversion: order.D.mu acquired while order.C.mu is held"
	c.mu.Unlock()
}

func lockDThenC(c *C, d *D) {
	d.mu.Lock()
	c.mu.Lock() // want "lock order inversion: order.C.mu acquired while order.D.mu is held"
	c.mu.Unlock()
	d.mu.Unlock()
}

// Self-edge: nesting two instances of one type needs an instance
// order the analysis cannot check.
type Node struct {
	mu   sync.Mutex
	next *Node
}

func (n *Node) link(m *Node) {
	n.mu.Lock()
	m.mu.Lock() // want "lock order inversion: order.Node.mu acquired while order.Node.mu is held"
	m.mu.Unlock()
	n.mu.Unlock()
}

// Package-level mutex crossing a struct lock.
var regMu sync.Mutex

type G struct{ mu sync.Mutex }

func registerG(g *G) {
	regMu.Lock()
	g.mu.Lock() // want "lock order inversion: order.G.mu acquired while order.regMu is held"
	g.mu.Unlock()
	regMu.Unlock()
}

func snapshotG(g *G) {
	g.mu.Lock()
	regMu.Lock() // want "lock order inversion: order.regMu acquired while order.G.mu is held"
	regMu.Unlock()
	g.mu.Unlock()
}

// Function literals are their own analysis units: a cycle that lives
// entirely inside two goroutine bodies is still found.
type W struct{ mu sync.Mutex }
type X struct{ mu sync.Mutex }

func spawnWX(w *W, x *X) {
	go func() {
		w.mu.Lock()
		x.mu.Lock() // want "lock order inversion: order.X.mu acquired while order.W.mu is held"
		x.mu.Unlock()
		w.mu.Unlock()
	}()
}

func spawnXW(w *W, x *X) {
	go func() {
		x.mu.Lock()
		w.mu.Lock() // want "lock order inversion: order.W.mu acquired while order.X.mu is held"
		w.mu.Unlock()
		x.mu.Unlock()
	}()
}

// Clean: a strict parent-before-child hierarchy has edges but no
// cycle.
type Parent struct{ mu sync.Mutex }
type Child struct{ mu sync.Mutex }

func parentThenChild(p *Parent, c *Child) {
	p.mu.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	p.mu.Unlock()
}

func parentThenChildDeferred(p *Parent, c *Child) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
}

// Clean: a function-local mutex has no cross-function identity, so it
// joins no ordering.
func localMutexClean(p *Parent) {
	var mu sync.Mutex
	mu.Lock()
	p.mu.Lock()
	p.mu.Unlock()
	mu.Unlock()
}

// Clean: a go-spawned call runs on its own goroutine and inherits no
// held locks, so it creates no ordering edge — even though drain
// acquires the very lock kick holds at the spawn.
type Q struct{ mu sync.Mutex }

func (q *Q) drain() {
	q.mu.Lock()
	q.mu.Unlock()
}

func (q *Q) kick() {
	q.mu.Lock()
	go q.drain()
	q.mu.Unlock()
}

// Clean: releasing the first lock before taking the second creates no
// edge — the CFG-accurate held set sees the Unlock.
func releasedBeforeSecond(a *A, c *Child) {
	a.mu.Lock()
	a.mu.Unlock()
	c.mu.Lock()
	c.mu.Unlock()
}
