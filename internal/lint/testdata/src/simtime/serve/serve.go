// Package serve is allowlisted: the job service fronts the simulation
// with a real HTTP control plane, so wall-clock reads (request
// deadlines, the coarse clock, simulated per-iteration compute) are
// deliberate and carry no want annotations.
package serve

import "time"

// Deadline computes a request deadline from the wall clock; allowed.
func Deadline() time.Time {
	return time.Now().Add(time.Minute)
}

// Step simulates a tenant job's compute phase; allowed.
func Step(ms int) {
	time.Sleep(time.Duration(ms) * time.Millisecond)
}

// Clock runs a coarse-clock ticker; allowed.
func Clock() *time.Ticker {
	return time.NewTicker(time.Millisecond)
}
