// Package coll is a miniature of the collective-schedule package: it
// stays restricted even after the serve exemption — schedule timing
// must come from the transport delay queue, never the host clock.
package coll

import "time"

// Round exercises the forbidden calls in a schedule-like context.
func Round() time.Time {
	time.Sleep(time.Microsecond) // want "direct time.Sleep in simulated package \"coll\""
	return time.Now()            // want "direct time.Now in simulated package \"coll\""
}

// Budget arithmetic on durations stays fine.
func Budget(d time.Duration) time.Duration {
	return d / 2
}
