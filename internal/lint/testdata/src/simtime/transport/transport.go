// Package transport is allowlisted: the delay queue's implementation
// deliberately deals in wall-clock time.
package transport

import "time"

// Deliver models a delivery delay; allowed here.
func Deliver() {
	time.Sleep(time.Microsecond)
}
