// Package cluster is a miniature of the simulated-cluster package: all
// wall-clock reads and sleeps here must route through the cluster's
// event hooks or the transport delay queue.
package cluster

import "time"

// Tick exercises each forbidden call.
func Tick() time.Time {
	time.Sleep(time.Millisecond) // want "direct time.Sleep in simulated package \"cluster\""
	<-time.After(time.Millisecond) // want "direct time.After in simulated package \"cluster\""
	t := time.NewTimer(time.Second) // want "direct time.NewTimer in simulated package \"cluster\""
	defer t.Stop()
	return time.Now() // want "direct time.Now in simulated package \"cluster\""
}

// Durations and arithmetic on time values are fine; only wall-clock
// acquisition is restricted.
func Clean(d time.Duration, base time.Time) time.Time {
	return base.Add(d * 2)
}

// Suppressed documents a deliberate wall-clock dependency.
func Suppressed() time.Time {
	//fmilint:ignore simtime fixture demonstrates a justified wall-clock read
	return time.Now()
}
