// Package lockheld exercises the lockheld analyzer: early returns with
// a manually-paired mutex held, and blocking operations reached under
// the lock. The clean functions pin the analyzer's tolerance for the
// correct patterns (defer, unlock-before-return, branch-local unlock,
// nonblocking select).
package lockheld

import (
	"sync"
	"time"
)

type state struct {
	mu     sync.Mutex
	rw     sync.RWMutex
	ch     chan int
	closed bool
}

func (s *state) earlyReturnHeld(cond bool) {
	s.mu.Lock()
	if cond {
		return // want "return while s.mu is held"
	}
	s.mu.Unlock()
}

func (s *state) branchUnlockClean(cond bool) {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
}

func (s *state) deferClean() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch
}

func (s *state) sendHeld(v int) {
	s.mu.Lock()
	s.ch <- v // want "channel send while s.mu is held"
	s.mu.Unlock()
}

func (s *state) recvHeld() int {
	s.mu.Lock()
	v := <-s.ch // want "channel receive while s.mu is held"
	s.mu.Unlock()
	return v
}

func (s *state) selectHeld() {
	s.mu.Lock()
	select { // want "select without default while s.mu is held"
	case v := <-s.ch:
		_ = v
	}
	s.mu.Unlock()
}

func (s *state) selectNonblockingClean() {
	s.mu.Lock()
	select {
	case v := <-s.ch:
		_ = v
	default:
	}
	s.mu.Unlock()
}

func (s *state) sleepHeld(d time.Duration) {
	s.mu.Lock()
	time.Sleep(d) // want "call to time.Sleep while s.mu is held"
	s.mu.Unlock()
}

func (s *state) rlockEarlyReturn(cond bool) {
	s.rw.RLock()
	if cond {
		return // want "return while s.rw is held"
	}
	s.rw.RUnlock()
}

func (s *state) neverUnlocked() {
	s.mu.Lock()
	s.closed = true
} // want "function ends with s.mu still held"

func (s *state) switchBranchesClean(n int) {
	s.mu.Lock()
	switch n {
	case 0:
		s.mu.Unlock()
		return
	default:
		s.mu.Unlock()
		return
	}
}

// --- buffered-channel capacity tracking ---
//
// A send under the lock is safe when the channel's capacity is known
// and the dataflow proves spare room at the send. The cases below pin
// the capacity lattice: constant-cap make, exhaustion, loop
// saturation, aliasing, and the whole-program field-capacity table.

func (s *state) bufferedSpareClean() {
	done := make(chan int, 2)
	s.mu.Lock()
	done <- 1
	done <- 2
	s.mu.Unlock()
	<-done
	<-done
}

func (s *state) bufferedExhausted() {
	done := make(chan int, 1)
	s.mu.Lock()
	done <- 1
	done <- 2 // want "channel send while s.mu is held"
	s.mu.Unlock()
}

func (s *state) loopSendSaturates() {
	done := make(chan int, 1)
	s.mu.Lock()
	for i := 0; i < 3; i++ {
		done <- i // want "channel send while s.mu is held"
	}
	s.mu.Unlock()
}

func (s *state) remakeInLoopClean() {
	s.mu.Lock()
	for i := 0; i < 3; i++ {
		ch := make(chan int, 1)
		ch <- i
		close(ch)
	}
	s.mu.Unlock()
}

func (s *state) nonConstCapStillFlagged(n int) {
	ch := make(chan int, n)
	s.mu.Lock()
	ch <- 1 // want "channel send while s.mu is held"
	s.mu.Unlock()
	<-ch
}

func (s *state) aliasKillsTracking() {
	a := make(chan int, 1)
	b := a
	s.mu.Lock()
	b <- 1 // want "channel send while s.mu is held"
	s.mu.Unlock()
	<-a
}

// fenced models the runtime's resize fence: every construction site
// gives the result channel capacity 1, so the field-capacity table
// proves the first send under the lock cannot block.
type fenced struct {
	mu  sync.Mutex
	res chan int
}

func newFenced() *fenced {
	return &fenced{res: make(chan int, 1)}
}

func (f *fenced) fieldCapSpareClean() {
	f.mu.Lock()
	f.res <- 1
	f.mu.Unlock()
}

func (f *fenced) fieldCapExhausted() {
	f.mu.Lock()
	f.res <- 1
	f.res <- 2 // want "channel send while f.mu is held"
	f.mu.Unlock()
}
