// Package cluster carries deliberately broken suppression directives;
// the driver test asserts the exact findings they produce (want
// comments cannot sit on a directive's own line, so this fixture is
// checked by direct assertion rather than the golden harness).
package cluster

import "time"

// MissingReason: the directive names an analyzer but no reason, so it
// is malformed and suppresses nothing.
func MissingReason() time.Time {
	//fmilint:ignore simtime
	return time.Now()
}

// UnknownAnalyzer: the directive names a non-existent analyzer.
func UnknownAnalyzer() time.Time {
	//fmilint:ignore bogus this analyzer does not exist
	return time.Now()
}
