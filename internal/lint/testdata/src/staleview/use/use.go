// Package use exercises the staleview analyzer: Size()-derived values
// cached before a Loop call and reused after it are findings. The
// clean functions pin the analyzer's tolerance for the correct idioms:
// re-reading Size after every Loop, caching when no view-change site
// exists, and fresh calls after the loop ends.
package use

import "staleview/core"

func cleanRereadInsideLoop(p *core.Proc) int {
	total := 0
	for {
		if p.Loop(nil) >= 3 {
			break
		}
		size := p.Size() // re-read after the view-change site: fresh
		total += size
	}
	return total
}

func cleanNoLoop(p *core.Proc) int {
	size := p.Size()
	return size * 2 // no view-change site in this function
}

func cleanFreshCallAfterLoop(p *core.Proc) int {
	for p.Loop(nil) < 3 {
	}
	return p.Size() // direct call, nothing cached
}

func cleanStraightLine(p *core.Proc) int {
	p.Loop(nil)
	size := p.Size() // read after the crossing, used before the next
	return size
}

func staleAcrossLoop(p *core.Proc) int {
	size := p.Size()
	total := 0
	for {
		if p.Loop(nil) >= 3 {
			break
		}
		total += size // want "size caches Size\(\) from before a Loop call"
	}
	return total
}

func staleDerived(p *core.Proc) int {
	paired := p.Rank()^1 < p.Size()
	total := 0
	for p.Loop(nil) < 3 {
		if paired { // want "paired caches Size\(\) from before a Loop call"
			total++
		}
	}
	return total
}

func staleCommSize(p *core.Proc) int {
	n := p.World().Size()
	for p.Loop(nil) < 3 {
		_ = n // want "n caches Size\(\) from before a Loop call"
	}
	return 0
}

func staleAfterLoopEnds(p *core.Proc) int {
	size := p.Size()
	for p.Loop(nil) < 3 {
	}
	return size // want "size caches Size\(\) from before a Loop call"
}

func staleInFuncLit(p *core.Proc) func() int {
	return func() int {
		n := p.Size()
		for p.Loop(nil) < 3 {
			_ = n // want "n caches Size\(\) from before a Loop call"
		}
		return 0
	}
}
