// Package core is a miniature of fmi/internal/core: just enough
// surface (Proc with Size/Rank/Loop and the Comm world) for the
// staleview analyzer to resolve against.
package core

// Comm is a stand-in communicator.
type Comm struct{}

// Size returns the communicator's world size.
func (*Comm) Size() int { return 4 }

// Proc is a stand-in rank process.
type Proc struct{ world Comm }

// Size returns the world size under the current view.
func (*Proc) Size() int { return 4 }

// Rank returns this process's rank.
func (*Proc) Rank() int { return 0 }

// Loop is the checkpoint/view-change call site.
func (*Proc) Loop(segs [][]byte) int { return 0 }

// World returns the world communicator.
func (p *Proc) World() *Comm { return &p.world }
