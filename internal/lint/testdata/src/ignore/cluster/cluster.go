// Package cluster exercises the //fmilint:ignore directive grammar:
// line-level suppression (same line or the line above) with a
// mandatory reason.
package cluster

import "time"

// LineAbove is suppressed by a directive on the preceding line.
func LineAbove() time.Time {
	//fmilint:ignore simtime justified: fixture for line-above suppression
	return time.Now()
}

// SameLine is suppressed by a directive trailing the flagged line.
func SameLine() time.Time {
	return time.Now() //fmilint:ignore simtime justified: fixture for same-line suppression
}

// Unsuppressed still reports.
func Unsuppressed() time.Time {
	return time.Now() // want "direct time.Now in simulated package \"cluster\""
}

// WrongAnalyzer: a directive for a different analyzer does not
// suppress this one's finding.
func WrongAnalyzer() time.Time {
	//fmilint:ignore lockheld reason aimed at the wrong analyzer // want "stale //fmilint:ignore directive: lockheld no longer reports at this site"
	return time.Now() // want "direct time.Now in simulated package \"cluster\""
}
