//fmilint:ignore simtime this whole file models wall-clock behaviour; see the package doc

package cluster

import "time"

// FileWideOne is covered by the file-level directive above the
// package clause.
func FileWideOne() time.Time {
	return time.Now()
}

// FileWideTwo likewise.
func FileWideTwo() {
	time.Sleep(time.Millisecond)
}
