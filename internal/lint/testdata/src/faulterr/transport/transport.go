// Package transport is a miniature of the real transport package: the
// fault-signalling surface (Send/Recv returning error) as both an
// interface and a concrete type, so the analyzer's direct-name rule
// and its implements-a-fault-interface rule are each exercised.
package transport

// Endpoint is the fault-signalling interface: its error results are
// the failure notification.
type Endpoint interface {
	Send(to string, data []byte) error
	Recv() ([]byte, error)
	Close() error // not a fault API: ignoring Close is allowed
}

// EP is a concrete endpoint.
type EP struct{}

// Send implements Endpoint.
func (*EP) Send(to string, data []byte) error { return nil }

// Recv implements Endpoint.
func (*EP) Recv() ([]byte, error) { return nil, nil }

// Close implements Endpoint.
func (*EP) Close() error { return nil }
