// Package use exercises the faulterr analyzer: every way of discarding
// a fault-path error is a finding; handling or propagating it is
// clean.
package use

import (
	"faulterr/impl"
	"faulterr/transport"
)

// Drive exercises every discard shape against the interface.
func Drive(ep transport.Endpoint) error {
	ep.Send("peer", nil)     // want "transport.Send error result ignored"
	_ = ep.Send("peer", nil) // want "transport.Send error assigned to _"
	data, _ := ep.Recv()     // want "transport.Recv error assigned to _"
	_ = data
	go ep.Send("peer", nil)    // want "transport.Send error result ignored by go statement"
	defer ep.Send("peer", nil) // want "transport.Send error result ignored by defer"

	defer ep.Close() // Close is not a fault API: clean.

	if err := ep.Send("peer", nil); err != nil { // handled: clean
		return err
	}
	return ep.Send("peer", nil) // propagated: clean
}

// Concrete exercises the direct-name rule on a concrete transport type.
func Concrete(ep *transport.EP) {
	ep.Send("peer", nil) // want "transport.Send error result ignored"
}

// Foreign exercises the implements-a-fault-interface rule: impl.Fake
// is declared outside the transport package but carries its contract.
func Foreign(f *impl.Fake) {
	f.Send("peer", nil) // want "impl.Send error result ignored"
	f.Close()           // Close is not a fault method: clean
}
