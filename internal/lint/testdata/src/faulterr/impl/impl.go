// Package impl provides a concrete implementation of the transport
// fault interface from an unrelated package — the shape of test
// harnesses and experiment shims, which inherit the error contract.
package impl

// Fake implements transport.Endpoint.
type Fake struct{}

// Send implements the fault interface.
func (*Fake) Send(to string, data []byte) error { return nil }

// Recv implements the fault interface.
func (*Fake) Recv() ([]byte, error) { return nil, nil }

// Close implements the fault interface.
func (*Fake) Close() error { return nil }
