// Package trace is a miniature of the real fmi/internal/trace package:
// just enough surface (the Kind type, declared constants, a Recorder
// with Add) for the tracekind analyzer to resolve against.
package trace

// Kind classifies an event.
type Kind string

// Declared kinds. KindDead is deliberately never emitted by the
// fixture's user package.
const (
	KindGood Kind = "good"
	KindAlso Kind = "also"
	KindDead Kind = "dead" // want "trace kind KindDead \(\"dead\"\) is declared but never emitted"
)

// Event is one timeline entry.
type Event struct {
	Kind Kind
	Note string
}

// Recorder collects events.
type Recorder struct {
	events []Event
}

// Add records an event.
func (r *Recorder) Add(kind Kind, format string, args ...any) {
	r.events = append(r.events, Event{Kind: kind, Note: format})
}
