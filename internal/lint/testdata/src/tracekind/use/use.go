// Package use exercises the tracekind analyzer: declared constants are
// clean, raw string literals reaching a trace.Kind site are findings.
package use

import "tracekind/trace"

// Emit drives every shape of trace-kind usage.
func Emit(r *trace.Recorder) {
	r.Add(trace.KindGood, "declared constant is fine")
	r.Add(trace.KindAlso, "so is this one")
	r.Add("raw-kind", "literal smuggled into Add") // want "raw trace kind \"raw-kind\"; use a declared trace.Kind constant"
	r.Add(trace.Kind("converted"), "explicit conversion")  // want "raw trace kind \"converted\"; use a declared trace.Kind constant"
	e := trace.Event{Kind: "composite", Note: "composite"} // want "raw trace kind \"composite\"; use a declared trace.Kind constant"
	if e.Kind == "compared" {                              // want "raw trace kind \"compared\"; use a declared trace.Kind constant"
		return
	}
	var k trace.Kind = "assigned" // want "raw trace kind \"assigned\"; use a declared trace.Kind constant"
	_ = k
}
