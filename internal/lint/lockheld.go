package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockHeld guards the deadlock shape the matcher's epoch-fence code is
// one typo away from: a manually-paired mu.Lock() left held on a
// return path, or a blocking operation (channel send/receive, select
// without default, transport Send/Recv, time.Sleep) reached while a
// mutex is held. The analysis is intraprocedural and syntax-directed:
// it tracks sync.Mutex / sync.RWMutex receivers by source expression
// within one function body, treats `defer mu.Unlock()` as releasing,
// and analyses branches independently (a branch that unlocks and
// returns does not release the straight-line path).
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "no return or blocking operation while a manually-paired mutex is held",
	Run:  runLockHeld,
}

func runLockHeld(prog *Program, report Reporter) {
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil {
						analyzeFuncBody(prog, pkg, report, n.Body)
					}
					return false // function literals inside are walked by block()
				}
				return true
			})
		}
	}
}

// analyzeFuncBody runs the held-lock walk over one function body and
// flags falling off the end with a lock held — unless the body ends in
// a terminating statement, in which case every live path was already
// checked at its return.
func analyzeFuncBody(prog *Program, pkg *Package, report Reporter, body *ast.BlockStmt) {
	lh := &lockState{prog: prog, pkg: pkg, report: report, held: map[string]bool{}}
	lh.block(body)
	if !terminates(body) {
		lh.checkEnd(body.Rbrace)
	}
}

type lockState struct {
	prog   *Program
	pkg    *Package
	report Reporter
	held   map[string]bool // lock receiver expr -> currently held
}

func (lh *lockState) anyHeld() (string, bool) {
	for k, v := range lh.held {
		if v {
			return k, true
		}
	}
	return "", false
}

func (lh *lockState) clone() *lockState {
	c := &lockState{prog: lh.prog, pkg: lh.pkg, report: lh.report, held: map[string]bool{}}
	for k, v := range lh.held {
		c.held[k] = v
	}
	return c
}

// mutexCall reports whether call is mu.Lock/Unlock/RLock/RUnlock on a
// sync.Mutex or sync.RWMutex value, returning the receiver's source
// key and the method name.
func (lh *lockState) mutexCall(call *ast.CallExpr) (recv, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	selection, found := lh.pkg.Info.Selections[sel]
	if !found {
		return "", "", false
	}
	fn, isFn := selection.Obj().(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	return exprString(lh.prog.Fset, sel.X), sel.Sel.Name, true
}

// block walks statements in order, updating held-lock state. Analysis
// of a block stops at a terminating statement: everything after it is
// dead code on this path.
func (lh *lockState) block(b *ast.BlockStmt) {
	for _, st := range b.List {
		lh.stmt(st)
		if terminates(st) {
			return
		}
	}
}

// terminates reports whether st ends the control-flow path it is on,
// per a simplified version of the spec's "terminating statements":
// return, panic, break/continue/goto, a block ending in one, if/else
// and switch/select where every branch terminates, and a for loop with
// no condition (break detection is skipped — misjudging a breaking
// loop as terminating only suppresses the fall-off-the-end check, it
// cannot create a false finding).
func terminates(st ast.Stmt) bool {
	switch st := st.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := st.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	case *ast.BlockStmt:
		return len(st.List) > 0 && terminates(st.List[len(st.List)-1])
	case *ast.LabeledStmt:
		return terminates(st.Stmt)
	case *ast.IfStmt:
		return st.Else != nil && terminates(st.Body) && terminates(st.Else)
	case *ast.ForStmt:
		return st.Cond == nil
	case *ast.SwitchStmt:
		return clausesTerminate(st.Body, true)
	case *ast.TypeSwitchStmt:
		return clausesTerminate(st.Body, true)
	case *ast.SelectStmt:
		return clausesTerminate(st.Body, false)
	}
	return false
}

func clausesTerminate(body *ast.BlockStmt, needDefault bool) bool {
	hasDefault := !needDefault
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			stmts = c.Body
			if c.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			stmts = c.Body
			if c.Comm == nil {
				hasDefault = true
			}
		}
		if len(stmts) == 0 || !terminates(stmts[len(stmts)-1]) {
			return false
		}
	}
	return hasDefault && len(body.List) > 0
}

func (lh *lockState) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if recv, method, ok := lh.mutexCall(call); ok {
				switch method {
				case "Lock", "RLock":
					lh.held[recv] = true
				case "Unlock", "RUnlock":
					lh.held[recv] = false
				}
				return
			}
		}
		lh.expr(st.X)
	case *ast.DeferStmt:
		if recv, method, ok := lh.mutexCall(st.Call); ok && (method == "Unlock" || method == "RUnlock") {
			// Deferred release: the lock is covered for every
			// subsequent return path.
			lh.held[recv] = false
			return
		}
		lh.exprs(st.Call.Args...)
	case *ast.GoStmt:
		// The goroutine body runs elsewhere; analyse it with a clean
		// slate but do not charge its blocking ops to this function.
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			inner := &lockState{prog: lh.prog, pkg: lh.pkg, report: lh.report, held: map[string]bool{}}
			inner.block(lit.Body)
			inner.checkEnd(lit.Body.Rbrace)
		}
		lh.exprs(st.Call.Args...)
	case *ast.ReturnStmt:
		lh.exprs(st.Results...)
		if recv, held := lh.anyHeld(); held {
			lh.report(st.Pos(), "return while %s is held (missing unlock on this path)", recv)
		}
	case *ast.SendStmt:
		lh.expr(st.Value)
		if recv, held := lh.anyHeld(); held {
			lh.report(st.Pos(), "channel send while %s is held may block under the lock", recv)
		}
	case *ast.SelectStmt:
		blocking := true
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				blocking = false // has a default clause
			}
		}
		if recv, held := lh.anyHeld(); held && blocking {
			lh.report(st.Pos(), "select without default while %s is held may block under the lock", recv)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				branch := lh.clone()
				for _, s := range cc.Body {
					branch.stmt(s)
				}
			}
		}
	case *ast.IfStmt:
		if st.Init != nil {
			lh.stmt(st.Init)
		}
		lh.expr(st.Cond)
		then := lh.clone()
		then.block(st.Body)
		if st.Else != nil {
			els := lh.clone()
			els.stmt(st.Else)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			lh.stmt(st.Init)
		}
		if st.Cond != nil {
			lh.expr(st.Cond)
		}
		body := lh.clone()
		body.block(st.Body)
		if st.Post != nil {
			body.stmt(st.Post)
		}
	case *ast.RangeStmt:
		lh.expr(st.X)
		if tv, ok := lh.pkg.Info.Types[st.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				if recv, held := lh.anyHeld(); held {
					lh.report(st.Pos(), "range over channel while %s is held may block under the lock", recv)
				}
			}
		}
		body := lh.clone()
		body.block(st.Body)
	case *ast.SwitchStmt:
		if st.Init != nil {
			lh.stmt(st.Init)
		}
		if st.Tag != nil {
			lh.expr(st.Tag)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				branch := lh.clone()
				for _, s := range cc.Body {
					branch.stmt(s)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				branch := lh.clone()
				for _, s := range cc.Body {
					branch.stmt(s)
				}
			}
		}
	case *ast.BlockStmt:
		lh.block(st)
	case *ast.LabeledStmt:
		lh.stmt(st.Stmt)
	case *ast.AssignStmt:
		lh.exprs(st.Rhs...)
	case *ast.IncDecStmt:
		lh.expr(st.X)
	}
}

// expr scans an expression for blocking operations performed while a
// lock is held: unary channel receives, time.Sleep, and calls into the
// transport's blocking Send/Recv surface.
func (lh *lockState) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			inner := &lockState{prog: lh.prog, pkg: lh.pkg, report: lh.report, held: map[string]bool{}}
			inner.block(n.Body)
			inner.checkEnd(n.Body.Rbrace)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if recv, held := lh.anyHeld(); held {
					lh.report(n.Pos(), "channel receive while %s is held may block under the lock", recv)
				}
			}
		case *ast.CallExpr:
			if name, blocking := lh.blockingCall(n); blocking {
				if recv, held := lh.anyHeld(); held {
					lh.report(n.Pos(), "call to %s while %s is held may block under the lock", name, recv)
				}
			}
		}
		return true
	})
}

func (lh *lockState) exprs(es ...ast.Expr) {
	for _, e := range es {
		lh.expr(e)
	}
}

// blockingCall recognises calls that can block indefinitely: the
// transport layer's Send/Recv/Await/Connect (failure notification can
// arrive only while unblocked, so waiting under a lock wedges the
// rank) and time.Sleep.
func (lh *lockState) blockingCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	var fn *types.Func
	if selection, found := lh.pkg.Info.Selections[sel]; found {
		fn, _ = selection.Obj().(*types.Func)
	} else if obj, found := lh.pkg.Info.Uses[sel.Sel]; found {
		fn, _ = obj.(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	pkg := fn.Pkg().Name()
	name := fn.Name()
	if pkg == "time" && name == "Sleep" {
		return "time.Sleep", true
	}
	if pkg == "transport" {
		switch name {
		case "Send", "Recv", "Await", "Connect":
			return "transport " + name, true
		}
	}
	return "", false
}

// checkEnd flags a function body that falls off its end with a lock
// still held on the straight-line path.
func (lh *lockState) checkEnd(rbrace token.Pos) {
	if recv, held := lh.anyHeld(); held {
		lh.report(rbrace, "function ends with %s still held (missing unlock on this path)", recv)
	}
}
