package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"fmi/internal/lint/cfg"
)

// LockHeld guards the deadlock shape the matcher's epoch-fence code is
// one typo away from: a manually-paired mu.Lock() left held on a
// return path, or a blocking operation (channel send/receive, select
// without default, transport Send/Recv, time.Sleep) reached while a
// mutex is held. The analysis runs the lint CFG's forward-dataflow
// fixpoint per function body: the held set at each node is the join
// over every path that reaches it, `defer mu.Unlock()` releases, and
// goroutine/function-literal bodies are analysed with a clean slate.
//
// Channel sends get capacity-aware treatment: a send on a channel
// whose buffer capacity is provably constant (a local make(chan T, N)
// tracked along def-use chains, or a struct field every one of whose
// creation sites is such a make) and whose path has spare room left
// is non-blocking and not reported. This is what lets the resize
// fence's buffered(1) result and waiter channels be sent to under
// j.mu without suppressions.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "no return or blocking operation while a manually-paired mutex is held",
	Run:  runLockHeld,
}

func runLockHeld(prog *Program, report Reporter) {
	fcaps := prog.chanFieldCaps()
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil {
						analyzeLockBody(prog, pkg, fcaps, report, n.Body)
					}
				case *ast.FuncLit:
					// A literal's body runs on its own stack frame (and
					// usually its own goroutine); locks held at the
					// creation site are not held inside it.
					analyzeLockBody(prog, pkg, fcaps, report, n.Body)
				}
				return true
			})
		}
	}
}

// analyzeLockBody drives one function body to a fixpoint and then
// replays the transfer function with reporting enabled, so every node
// is judged exactly once against the join over all paths reaching it.
func analyzeLockBody(prog *Program, pkg *Package, fcaps map[*types.Var]int, report Reporter, body *ast.BlockStmt) {
	g := cfg.New(body)
	an := &lockAnalysis{prog: prog, pkg: pkg, fcaps: fcaps}
	in := cfg.Forward(g, an)
	an.report = report
	cfg.EachReachable(g, an, in, func(cfg.Node, cfg.Fact) {})
	// Exit is reachable only by falling off the end of the body; a
	// lock still held there is a missing unlock on the straight path.
	if exitFact, reachable := in[g.Exit]; reachable {
		if recv, held := anyHeld(exitFact.(*lockFact).held); held {
			report(body.Rbrace, "function ends with %s still held (missing unlock on this path)", recv)
		}
	}
}

// lockFact is the dataflow fact: which mutex receivers are held on
// some path reaching this point, plus the channel-capacity facts that
// decide whether a send under a lock can actually block.
type lockFact struct {
	held map[string]bool
	caps *cfg.ChanCaps
}

// anyHeld returns the lexically-smallest held lock so messages are
// deterministic when several locks are held at once.
func anyHeld(held map[string]bool) (string, bool) {
	best := ""
	for k, v := range held {
		if v && (best == "" || k < best) {
			best = k
		}
	}
	return best, best != ""
}

type lockAnalysis struct {
	prog   *Program
	pkg    *Package
	fcaps  map[*types.Var]int
	report Reporter // nil during the fixpoint pass
}

func (la *lockAnalysis) Entry() cfg.Fact {
	return &lockFact{held: map[string]bool{}, caps: cfg.NewChanCaps()}
}

func (la *lockAnalysis) Copy(f cfg.Fact) cfg.Fact {
	lf := f.(*lockFact)
	n := &lockFact{held: map[string]bool{}, caps: lf.caps.Copy()}
	for k, v := range lf.held {
		n.held[k] = v
	}
	return n
}

// Join merges src into dst: a lock held on any incoming path is held
// (may-analysis — reporting a possibly-missing unlock is the point),
// and capacity facts merge pessimistically (see cfg.ChanCaps.Join).
func (la *lockAnalysis) Join(dst, src cfg.Fact) bool {
	d, s := dst.(*lockFact), src.(*lockFact)
	changed := false
	for k, v := range s.held {
		if v && !d.held[k] {
			d.held[k] = true
			changed = true
		}
	}
	if d.caps.Join(s.caps) {
		changed = true
	}
	return changed
}

func (la *lockAnalysis) emit(pos token.Pos, format string, args ...any) {
	if la.report != nil {
		la.report(pos, format, args...)
	}
}

func (la *lockAnalysis) Transfer(n cfg.Node, f cfg.Fact) cfg.Fact {
	lf := f.(*lockFact)
	if n.Comm {
		// The comm operation of a chosen select clause: it already won
		// the select (charged at the SelectStmt head), so it does not
		// block — only its state effects matter here.
		switch st := n.Ast.(type) {
		case *ast.SendStmt:
			la.chargeSend(st, lf)
		case *ast.AssignStmt:
			la.applyAssign(st, lf)
		}
		return lf
	}
	switch st := n.Ast.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if recv, method, ok := la.mutexCall(call); ok {
				switch method {
				case "Lock", "RLock":
					lf.held[recv] = true
				case "Unlock", "RUnlock":
					lf.held[recv] = false
				}
				return lf
			}
		}
		la.scanExpr(st.X, lf)
	case *ast.DeferStmt:
		if recv, method, ok := la.mutexCall(st.Call); ok && (method == "Unlock" || method == "RUnlock") {
			// Deferred release: the lock is covered for every
			// subsequent return path.
			lf.held[recv] = false
			return lf
		}
		la.scanExprs(lf, st.Call.Args...)
	case *ast.GoStmt:
		// The goroutine body runs elsewhere (analysed separately with
		// a clean slate); only argument evaluation happens here.
		la.scanExprs(lf, st.Call.Args...)
	case *ast.ReturnStmt:
		la.scanExprs(lf, st.Results...)
		if recv, held := anyHeld(lf.held); held {
			la.emit(st.Pos(), "return while %s is held (missing unlock on this path)", recv)
		}
	case *ast.SendStmt:
		la.scanExpr(st.Value, lf)
		safe := la.chargeSend(st, lf)
		if recv, held := anyHeld(lf.held); held && !safe {
			la.emit(st.Pos(), "channel send while %s is held may block under the lock", recv)
		}
	case *ast.SelectStmt:
		blocking := true
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				blocking = false // has a default clause
			}
		}
		if recv, held := anyHeld(lf.held); held && blocking {
			la.emit(st.Pos(), "select without default while %s is held may block under the lock", recv)
		}
	case *ast.RangeStmt:
		la.scanExpr(st.X, lf)
		if tv, ok := la.pkg.Info.Types[st.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				if recv, held := anyHeld(lf.held); held {
					la.emit(st.Pos(), "range over channel while %s is held may block under the lock", recv)
				}
			}
		}
		// Key/value rebind every iteration: forget capacity facts
		// rooted at them (w in `for r, w := range waiters` is a fresh
		// waiter each time round).
		if st.Key != nil {
			lf.caps.Kill(cfg.ExprString(st.Key))
		}
		if st.Value != nil {
			lf.caps.Kill(cfg.ExprString(st.Value))
		}
	case *ast.AssignStmt:
		la.scanExprs(lf, st.Rhs...)
		la.applyAssign(st, lf)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				la.scanExprs(lf, vs.Values...)
				for i, name := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) && len(vs.Values) == len(vs.Names) {
						rhs = vs.Values[i]
					}
					lf.caps.Assign(la.pkg.Info, name, rhs)
				}
			}
		}
	case *ast.IncDecStmt:
		la.scanExpr(st.X, lf)
	case *ast.LabeledStmt, *ast.BranchStmt, *ast.EmptyStmt:
	default:
		if e, ok := n.Ast.(ast.Expr); ok {
			// A control expression (if/for condition, switch tag, case
			// expression) evaluated at this point.
			la.scanExpr(e, lf)
		}
	}
	return lf
}

// chargeSend records one send against the channel's capacity facts
// and reports whether it provably has spare buffer room.
func (la *lockAnalysis) chargeSend(st *ast.SendStmt, lf *lockFact) bool {
	key := cfg.ExprString(ast.Unparen(st.Chan))
	fc, have := la.fieldCap(st.Chan)
	return lf.caps.Send(key, fc, have)
}

// fieldCap resolves a channel operand that is a struct field access
// to its whole-program constant capacity, if the field has one.
func (la *lockAnalysis) fieldCap(e ast.Expr) (int, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return 0, false
	}
	selection, found := la.pkg.Info.Selections[sel]
	if !found || selection.Kind() != types.FieldVal {
		return 0, false
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok {
		return 0, false
	}
	c, ok := la.fcaps[field]
	return c, ok
}

func (la *lockAnalysis) applyAssign(st *ast.AssignStmt, lf *lockFact) {
	if len(st.Lhs) == len(st.Rhs) {
		for i := range st.Lhs {
			lf.caps.Assign(la.pkg.Info, st.Lhs[i], st.Rhs[i])
		}
		return
	}
	for _, lhs := range st.Lhs {
		lf.caps.Kill(cfg.ExprString(lhs))
	}
}

// mutexCall reports whether call is mu.Lock/Unlock/RLock/RUnlock on a
// sync.Mutex or sync.RWMutex value, returning the receiver's source
// key and the method name.
func (la *lockAnalysis) mutexCall(call *ast.CallExpr) (recv, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	selection, found := la.pkg.Info.Selections[sel]
	if !found {
		return "", "", false
	}
	fn, isFn := selection.Obj().(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	return cfg.ExprString(sel.X), sel.Sel.Name, true
}

// scanExpr scans an expression for blocking operations performed
// while a lock is held (unary channel receives, time.Sleep, calls
// into the transport's blocking surface) and degrades capacity facts
// for channels that escape: a tracked channel passed as a call
// argument or captured by a function literal can be filled elsewhere,
// so its spare room is no longer provable.
func (la *lockAnalysis) scanExpr(e ast.Expr, lf *lockFact) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// The body is analysed separately with a clean slate; here
			// it only matters as an escape route for tracked channels.
			la.killCaptured(n, lf)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if recv, held := anyHeld(lf.held); held {
					la.emit(n.Pos(), "channel receive while %s is held may block under the lock", recv)
				}
			}
		case *ast.CallExpr:
			if name, blocking := la.blockingCall(n); blocking {
				if recv, held := anyHeld(lf.held); held {
					la.emit(n.Pos(), "call to %s while %s is held may block under the lock", name, recv)
				}
			}
			for _, arg := range n.Args {
				if key := cfg.ExprString(ast.Unparen(arg)); lf.caps.Tracked(key) {
					lf.caps.Kill(key)
				}
			}
		}
		return true
	})
}

func (la *lockAnalysis) scanExprs(lf *lockFact, es ...ast.Expr) {
	for _, e := range es {
		la.scanExpr(e, lf)
	}
}

// killCaptured forgets capacity facts whose root variable is
// mentioned inside a function literal: the closure may send on it.
func (la *lockAnalysis) killCaptured(lit *ast.FuncLit, lf *lockFact) {
	mentioned := map[string]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			mentioned[id.Name] = true
		}
		return true
	})
	lf.caps.KillRoots(mentioned)
}

// blockingCall recognises calls that can block indefinitely: the
// transport layer's Send/Recv/Await/Connect (failure notification can
// arrive only while unblocked, so waiting under a lock wedges the
// rank) and time.Sleep.
func (la *lockAnalysis) blockingCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	var fn *types.Func
	if selection, found := la.pkg.Info.Selections[sel]; found {
		fn, _ = selection.Obj().(*types.Func)
	} else if obj, found := la.pkg.Info.Uses[sel.Sel]; found {
		fn, _ = obj.(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	pkg := fn.Pkg().Name()
	name := fn.Name()
	if pkg == "time" && name == "Sleep" {
		return "time.Sleep", true
	}
	if pkg == "transport" {
		switch name {
		case "Send", "Recv", "Await", "Connect":
			return "transport " + name, true
		}
	}
	return "", false
}
