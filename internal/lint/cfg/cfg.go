// Package cfg is fmilint's intraprocedural control-flow-graph and
// forward-dataflow framework. It turns one function body (go/ast, no
// SSA, no external dependencies) into basic blocks connected by
// execution-order edges, and runs pluggable analyses to a worklist
// fixpoint over them.
//
// The graph is statement-level: each block carries the statements and
// control expressions that execute unconditionally once the block is
// entered, in order. Control statements contribute their pieces to
// the right blocks — an if's condition sits in the block before the
// branch, a for's condition in the loop head, a select's comm
// operations at the top of their clause blocks — and the statements
// that end a path (return, panic, break/continue/goto) end their
// block with the matching edge (or none: return and panic leave the
// function, so they deliberately do not edge to Exit; Exit is
// reachable only by falling off the end of the body, which is exactly
// what "function ends while still holding X" analyses need to see).
//
// This replaces the per-statement branch-cloning walks the analyzers
// grew up with: the spec's terminating-statement analysis is embodied
// by edge construction (a block whose last statement terminates gets
// no fall-through edge), loops get real back edges so facts reach a
// fixpoint instead of being guessed from one pass, and labeled
// break/continue/goto land on their actual targets.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
)

// Graph is the control-flow graph of one function body.
type Graph struct {
	Blocks []*Block
	Entry  *Block
	// Exit is reached only by falling off the end of the body (or by
	// a break/goto that lands past the last statement). Returns and
	// panics do not edge here: a path that explicitly leaves the
	// function is checked at its return site, not at Rbrace.
	Exit *Block
}

// Node is one entry of a block: a statement or a control expression,
// in execution order. Comm marks the communication statement of a
// select clause — it executes only when its case is chosen, and
// "blocking while locked" analyses must charge the select head, not
// the individual comm, for the wait.
type Node struct {
	Ast  ast.Node
	Comm bool
}

// Block is one basic block: nodes that execute in sequence, then a
// transfer of control to one of Succs (none for return/panic blocks).
type Block struct {
	Index int
	Kind  string // "entry", "exit", "if.then", "for.head", ... for tests and dumps
	Nodes []Node
	Succs []*Block
}

// String renders "b3(for.head)" for diagnostics.
func (b *Block) String() string { return fmt.Sprintf("b%d(%s)", b.Index, b.Kind) }

// New builds the graph for one function body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: map[string]*labelInfo{}}
	g.Entry = b.newBlock("entry")
	g.Exit = &Block{Kind: "exit"} // indexed last, below
	b.cur = g.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, g.Exit)
	}
	g.Exit.Index = len(g.Blocks)
	g.Blocks = append(g.Blocks, g.Exit)
	return g
}

type builder struct {
	g   *Graph
	cur *Block // nil after a terminating statement: what follows is dead until a label revives it
	// ctrl is the stack of enclosing breakable/continuable statements.
	ctrl   []ctrlFrame
	labels map[string]*labelInfo
	// pendingLabel is the label naming the next loop/switch/select, so
	// "break L"/"continue L" can find it.
	pendingLabel string
}

type ctrlFrame struct {
	label        string
	breakTarget  *Block
	contTarget   *Block // nil for switch/select frames
}

type labelInfo struct {
	block *Block // target of goto L (the labeled statement's block)
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// live returns the current block, reviving a dead position with a
// fresh unreachable block so statements after a return still get
// built (a label inside them can make them reachable again).
func (b *builder) live() *Block {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	return b.cur
}

func (b *builder) add(n ast.Node) {
	blk := b.live()
	blk.Nodes = append(blk.Nodes, Node{Ast: n})
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, st := range list {
		b.stmt(st)
	}
}

// takeLabel consumes the pending label for a breakable statement.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findBreak returns the break target for the given (possibly empty)
// label; findCont the continue target.
func (b *builder) findBreak(label string) *Block {
	for i := len(b.ctrl) - 1; i >= 0; i-- {
		if label == "" || b.ctrl[i].label == label {
			return b.ctrl[i].breakTarget
		}
	}
	return nil
}

func (b *builder) findCont(label string) *Block {
	for i := len(b.ctrl) - 1; i >= 0; i-- {
		if b.ctrl[i].contTarget == nil {
			continue // switch/select: continue binds through them
		}
		if label == "" || b.ctrl[i].label == label {
			return b.ctrl[i].contTarget
		}
	}
	return nil
}

// labelBlock returns (creating on demand) the block a goto/label pair
// shares; forward gotos create it before the labeled statement is
// reached.
func (b *builder) labelBlock(name string) *Block {
	if li, ok := b.labels[name]; ok {
		return li.block
	}
	blk := b.newBlock("label." + name)
	b.labels[name] = &labelInfo{block: blk}
	return blk
}

// isPanicCall reports whether st is a call to the predeclared panic
// (shadowing is not tracked; neither did the statement-level walks).
func isPanicCall(st ast.Stmt) bool {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *builder) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.BlockStmt:
		b.stmtList(st.List)
	case *ast.EmptyStmt:
	case *ast.LabeledStmt:
		target := b.labelBlock(st.Label.Name)
		if b.cur != nil {
			b.edge(b.cur, target)
		}
		b.cur = target
		b.pendingLabel = st.Label.Name
		b.stmt(st.Stmt)
		b.pendingLabel = ""
	case *ast.ReturnStmt:
		b.add(st)
		b.cur = nil
	case *ast.BranchStmt:
		switch st.Tok {
		case token.BREAK:
			label := ""
			if st.Label != nil {
				label = st.Label.Name
			}
			if t := b.findBreak(label); t != nil && b.cur != nil {
				b.edge(b.cur, t)
			}
			b.cur = nil
		case token.CONTINUE:
			label := ""
			if st.Label != nil {
				label = st.Label.Name
			}
			if t := b.findCont(label); t != nil && b.cur != nil {
				b.edge(b.cur, t)
			}
			b.cur = nil
		case token.GOTO:
			if st.Label != nil && b.cur != nil {
				b.edge(b.cur, b.labelBlock(st.Label.Name))
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled by the enclosing switch builder; reaching here
			// means a stray fallthrough, which gofmt'd code cannot have.
		}
	case *ast.ExprStmt:
		b.add(st)
		if isPanicCall(st) {
			b.cur = nil
		}
	case *ast.IfStmt:
		if st.Init != nil {
			b.stmt(st.Init)
		}
		b.add(st.Cond)
		cond := b.live()
		then := b.newBlock("if.then")
		b.edge(cond, then)
		b.cur = then
		b.stmtList(st.Body.List)
		afterThen := b.cur
		var afterElse *Block
		if st.Else != nil {
			els := b.newBlock("if.else")
			b.edge(cond, els)
			b.cur = els
			b.stmt(st.Else)
			afterElse = b.cur
		}
		join := b.newBlock("if.done")
		if st.Else == nil {
			b.edge(cond, join)
		}
		if afterThen != nil {
			b.edge(afterThen, join)
		}
		if afterElse != nil {
			b.edge(afterElse, join)
		}
		b.cur = join
	case *ast.ForStmt:
		label := b.takeLabel()
		if st.Init != nil {
			b.stmt(st.Init)
		}
		head := b.newBlock("for.head")
		b.edge(b.live(), head)
		if st.Cond != nil {
			head.Nodes = append(head.Nodes, Node{Ast: st.Cond})
		}
		body := b.newBlock("for.body")
		exit := b.newBlock("for.done")
		b.edge(head, body)
		if st.Cond != nil {
			b.edge(head, exit)
		}
		cont := head
		var post *Block
		if st.Post != nil {
			post = b.newBlock("for.post")
			b.edge(post, head)
			cont = post
		}
		b.ctrl = append(b.ctrl, ctrlFrame{label: label, breakTarget: exit, contTarget: cont})
		b.cur = body
		b.stmtList(st.Body.List)
		if b.cur != nil {
			if post != nil {
				b.edge(b.cur, post)
			} else {
				b.edge(b.cur, head)
			}
		}
		if post != nil {
			post.Nodes = append(post.Nodes, Node{Ast: st.Post})
		}
		b.ctrl = b.ctrl[:len(b.ctrl)-1]
		b.cur = exit
	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock("range.head")
		b.edge(b.live(), head)
		// The whole RangeStmt is the head's node: analyses see the
		// ranged expression and the per-iteration key/value rebinding
		// there, without descending into the body (which has its own
		// blocks).
		head.Nodes = append(head.Nodes, Node{Ast: st})
		body := b.newBlock("range.body")
		exit := b.newBlock("range.done")
		b.edge(head, body)
		b.edge(head, exit)
		b.ctrl = append(b.ctrl, ctrlFrame{label: label, breakTarget: exit, contTarget: head})
		b.cur = body
		b.stmtList(st.Body.List)
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.ctrl = b.ctrl[:len(b.ctrl)-1]
		b.cur = exit
	case *ast.SwitchStmt:
		label := b.takeLabel()
		if st.Init != nil {
			b.stmt(st.Init)
		}
		if st.Tag != nil {
			b.add(st.Tag)
		}
		b.switchClauses(label, st.Body, func(c *ast.CaseClause) []ast.Node {
			nodes := make([]ast.Node, len(c.List))
			for i, e := range c.List {
				nodes[i] = e
			}
			return nodes
		})
	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if st.Init != nil {
			b.stmt(st.Init)
		}
		b.add(st.Assign)
		b.switchClauses(label, st.Body, func(*ast.CaseClause) []ast.Node { return nil })
	case *ast.SelectStmt:
		label := b.takeLabel()
		// The SelectStmt itself is a head node: "may block while
		// locked" analyses inspect its clause list (default or not)
		// there, shallowly.
		b.add(st)
		head := b.live()
		exit := b.newBlock("select.done")
		b.ctrl = append(b.ctrl, ctrlFrame{label: label, breakTarget: exit})
		for _, c := range st.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			clause := b.newBlock("select.case")
			b.edge(head, clause)
			if cc.Comm != nil {
				clause.Nodes = append(clause.Nodes, Node{Ast: cc.Comm, Comm: true})
			}
			b.cur = clause
			b.stmtList(cc.Body)
			if b.cur != nil {
				b.edge(b.cur, exit)
			}
		}
		b.ctrl = b.ctrl[:len(b.ctrl)-1]
		if len(st.Body.List) == 0 {
			// select{} blocks forever: exit is unreachable.
			b.cur = nil
			exit.Kind = "select.never"
		} else {
			b.cur = exit
		}
	case *ast.GoStmt, *ast.DeferStmt, *ast.AssignStmt, *ast.IncDecStmt,
		*ast.SendStmt, *ast.DeclStmt:
		b.add(st)
	default:
		b.add(st)
	}
}

// switchClauses builds the clause blocks of a switch/type switch:
// every clause is a successor of the head, fallthrough chains to the
// next clause, and a missing default adds the head -> exit edge.
func (b *builder) switchClauses(label string, body *ast.BlockStmt, caseNodes func(*ast.CaseClause) []ast.Node) {
	head := b.live()
	exit := b.newBlock("switch.done")
	var clauses []*ast.CaseClause
	var blocks []*Block
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		clauses = append(clauses, cc)
		blk := b.newBlock("switch.case")
		blocks = append(blocks, blk)
		b.edge(head, blk)
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, exit)
	}
	b.ctrl = append(b.ctrl, ctrlFrame{label: label, breakTarget: exit})
	for i, cc := range clauses {
		blk := blocks[i]
		for _, n := range caseNodes(cc) {
			blk.Nodes = append(blk.Nodes, Node{Ast: n})
		}
		b.cur = blk
		stmts := cc.Body
		fallsThrough := false
		if n := len(stmts); n > 0 {
			if br, ok := stmts[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				stmts = stmts[:n-1]
				fallsThrough = true
			}
		}
		b.stmtList(stmts)
		if b.cur != nil {
			if fallsThrough && i+1 < len(blocks) {
				b.edge(b.cur, blocks[i+1])
			} else {
				b.edge(b.cur, exit)
			}
		}
		b.cur = nil
	}
	b.ctrl = b.ctrl[:len(b.ctrl)-1]
	b.cur = exit
}
