package cfg

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ExprString renders a (small) expression back to a canonical source
// string, used to key lock receivers and channel operands across the
// analyzers. Two syntactically-identical lvalues get the same key.
func ExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return ExprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return ExprString(e.X)
	case *ast.IndexExpr:
		return ExprString(e.X) + "[...]"
	case *ast.CallExpr:
		return ExprString(e.Fun) + "(...)"
	case *ast.StarExpr:
		return "*" + ExprString(e.X)
	case *ast.UnaryExpr:
		return e.Op.String() + ExprString(e.X)
	default:
		return fmt.Sprintf("%T", e)
	}
}

// MakeChanCap recognises `make(chan T)` and `make(chan T, N)` with a
// constant N, returning the buffer capacity. ok is false for any
// other expression, including makes with a non-constant capacity.
func MakeChanCap(info *types.Info, e ast.Expr) (cap int, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall || len(call.Args) == 0 {
		return 0, false
	}
	id, isIdent := call.Fun.(*ast.Ident)
	if !isIdent || id.Name != "make" {
		return 0, false
	}
	if b, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin || b.Name() != "make" {
		return 0, false
	}
	tv, found := info.Types[call.Args[0]]
	if !found {
		return 0, false
	}
	if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return 0, false
	}
	if len(call.Args) == 1 {
		return 0, true
	}
	capTV, found := info.Types[call.Args[1]]
	if !found || capTV.Value == nil {
		return 0, false
	}
	n, exact := constant.Int64Val(constant.ToInt(capTV.Value))
	if !exact || n < 0 {
		return 0, false
	}
	return int(n), true
}

// ChanCaps is the const-propagation fact for channel buffer
// capacities along def-use chains: which channel-valued expressions
// hold a channel made with a known constant capacity, and how many
// sends have already been charged to each on the current path. A send
// is provably non-blocking when its channel's capacity is known and
// the path's prior sends leave spare room.
type ChanCaps struct {
	Cap  map[string]int // expr key -> known make(chan T, N) capacity
	Sent map[string]int // expr key -> sends charged on this path (missing = 0)
}

func NewChanCaps() *ChanCaps {
	return &ChanCaps{Cap: map[string]int{}, Sent: map[string]int{}}
}

func (c *ChanCaps) Copy() *ChanCaps {
	n := NewChanCaps()
	for k, v := range c.Cap {
		n.Cap[k] = v
	}
	for k, v := range c.Sent {
		n.Sent[k] = v
	}
	return n
}

// Join merges src into c for a control-flow join: capacities survive
// only where both paths agree (anything else degrades to unknown),
// send counts take the per-key maximum (the worst path decides
// whether spare room remains). Reports whether c changed.
func (c *ChanCaps) Join(src *ChanCaps) bool {
	changed := false
	for k, v := range c.Cap {
		if sv, ok := src.Cap[k]; !ok || sv != v {
			delete(c.Cap, k)
			changed = true
		}
	}
	for k, v := range src.Sent {
		if v > c.Sent[k] {
			c.Sent[k] = v
			changed = true
		}
	}
	return changed
}

func (c *ChanCaps) Equal(o *ChanCaps) bool {
	if len(c.Cap) != len(o.Cap) || len(c.Sent) != len(o.Sent) {
		return false
	}
	for k, v := range c.Cap {
		if ov, ok := o.Cap[k]; !ok || ov != v {
			return false
		}
	}
	for k, v := range c.Sent {
		if ov, ok := o.Sent[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// Kill forgets everything known about the lvalue key and any key
// reached through it ("w" kills "w.ch" and "w[...]").
func (c *ChanCaps) Kill(key string) {
	for k := range c.Cap {
		if killedBy(k, key) {
			delete(c.Cap, k)
		}
	}
	for k := range c.Sent {
		if killedBy(k, key) {
			delete(c.Sent, k)
		}
	}
}

func killedBy(k, root string) bool {
	return k == root || strings.HasPrefix(k, root+".") || strings.HasPrefix(k, root+"[")
}

// Tracked reports whether the key currently has a known capacity.
func (c *ChanCaps) Tracked(k string) bool {
	_, ok := c.Cap[k]
	return ok
}

// KillRoots forgets every key whose root variable ("w" for "w.ch") is
// in roots — used when a closure captures locals and may send on them.
func (c *ChanCaps) KillRoots(roots map[string]bool) {
	kill := func(m map[string]int) {
		for k := range m {
			root := k
			for i := 0; i < len(k); i++ {
				if k[i] == '.' || k[i] == '[' {
					root = k[:i]
					break
				}
			}
			if roots[root] {
				delete(m, k)
			}
		}
	}
	kill(c.Cap)
	kill(c.Sent)
}

// Assign records one lhs = rhs pair: a make-chan seeds a known
// capacity, anything else degrades lhs to unknown. Copying a tracked
// channel also kills the source: the two names would share one buffer
// and per-name send counts could no longer prove spare room. Call
// once per pair of an AssignStmt or ValueSpec.
func (c *ChanCaps) Assign(info *types.Info, lhs, rhs ast.Expr) {
	key := ExprString(lhs)
	c.Kill(key)
	if rhs == nil {
		return
	}
	if n, ok := MakeChanCap(info, rhs); ok {
		c.Cap[key] = n
		return
	}
	rkey := ExprString(ast.Unparen(rhs))
	if _, tracked := c.Cap[rkey]; tracked {
		c.Kill(rkey)
	}
}

// Send charges one send on the channel keyed k and reports whether it
// was provably non-blocking: the capacity is known (locally, or from
// fieldCap when the caller resolved the operand to a struct field
// with a whole-program constant capacity) and the sends already
// charged on this path leave spare room.
func (c *ChanCaps) Send(k string, fieldCap int, haveFieldCap bool) (safe bool) {
	cap, known := c.Cap[k]
	if !known && haveFieldCap {
		cap, known = fieldCap, true
	}
	prior := c.Sent[k]
	// Saturate the counter so loop back edges reach a fixpoint: past
	// cap the exact count no longer matters (the send already blocks),
	// and with an unknown capacity any count ≥ 1 is equivalent.
	bound := 1
	if known {
		bound = cap + 1
	}
	if n := prior + 1; n < bound {
		c.Sent[k] = n
	} else {
		c.Sent[k] = bound
	}
	return known && prior < cap
}
