package cfg_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"fmi/internal/lint/cfg"
)

// build parses one function body (with channels a, b and an empty
// interface x in scope) and returns its CFG plus the type info needed
// by the capacity tests.
func build(t *testing.T, body string) (*cfg.Graph, *types.Info, *token.FileSet) {
	t.Helper()
	src := "package p\n\nfunc f(a, b chan int, x interface{}) {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	fn := file.Decls[0].(*ast.FuncDecl)
	return cfg.New(fn.Body), info, fset
}

func reachable(g *cfg.Graph) map[*cfg.Block]bool {
	seen := map[*cfg.Block]bool{g.Entry: true}
	stack := []*cfg.Block{g.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

func blocksOf(g *cfg.Graph, kind string) []*cfg.Block {
	var out []*cfg.Block
	for _, b := range g.Blocks {
		if b.Kind == kind {
			out = append(out, b)
		}
	}
	return out
}

func hasEdge(from, to *cfg.Block) bool {
	for _, s := range from.Succs {
		if s == to {
			return true
		}
	}
	return false
}

func TestStraightLineReachesExit(t *testing.T) {
	g, _, _ := build(t, "y := 1\n_ = y")
	if len(g.Entry.Nodes) != 2 {
		t.Fatalf("entry nodes = %d, want 2", len(g.Entry.Nodes))
	}
	if !reachable(g)[g.Exit] {
		t.Fatalf("exit should be reachable by fall-through")
	}
}

func TestReturnDoesNotEdgeToExit(t *testing.T) {
	g, _, _ := build(t, "return")
	if reachable(g)[g.Exit] {
		t.Fatalf("exit must be unreachable when every path returns")
	}
}

func TestIfElseBothReturn(t *testing.T) {
	g, _, _ := build(t, "if x == nil {\nreturn\n} else {\nreturn\n}")
	if reachable(g)[g.Exit] {
		t.Fatalf("exit must be unreachable when both branches return")
	}
	g, _, _ = build(t, "if x == nil {\nreturn\n}")
	if !reachable(g)[g.Exit] {
		t.Fatalf("exit must stay reachable through the false branch")
	}
}

func TestLabeledBreakTargetsOuterLoop(t *testing.T) {
	g, _, _ := build(t, `
L:
	for i := 0; i < 10; i++ {
		for {
			break L
		}
	}
	y := 1
	_ = y
`)
	seen := reachable(g)
	if !seen[g.Exit] {
		t.Fatalf("break L must reach the code after the outer loop")
	}
	// The inner loop's own done block is only reachable via a plain
	// break, which this body does not have.
	dones := blocksOf(g, "for.done")
	if len(dones) != 2 {
		t.Fatalf("for.done blocks = %d, want 2", len(dones))
	}
	reach := 0
	for _, d := range dones {
		if seen[d] {
			reach++
		}
	}
	if reach != 1 {
		t.Fatalf("reachable for.done blocks = %d, want 1 (outer only)", reach)
	}
	// break L edges straight from the inner body to the outer done.
	innerBodies := blocksOf(g, "for.body")
	foundDirect := false
	for _, b := range innerBodies {
		for _, d := range dones {
			if seen[d] && hasEdge(b, d) {
				foundDirect = true
			}
		}
	}
	if !foundDirect {
		t.Fatalf("no direct edge from a loop body to the outer for.done")
	}
}

func TestDeferStaysInOrder(t *testing.T) {
	g, _, _ := build(t, "y := 0\ndefer func() { _ = y }()\n_ = y")
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry nodes = %d, want 3", len(g.Entry.Nodes))
	}
	if _, ok := g.Entry.Nodes[1].Ast.(*ast.DeferStmt); !ok {
		t.Fatalf("node 1 = %T, want *ast.DeferStmt in statement order", g.Entry.Nodes[1].Ast)
	}
}

func TestSelectClausesAndCommMarkers(t *testing.T) {
	g, _, _ := build(t, `
select {
case v := <-a:
	_ = v
case b <- 1:
default:
}
`)
	head := g.Entry
	if len(head.Nodes) == 0 {
		t.Fatalf("select head has no nodes")
	}
	if _, ok := head.Nodes[len(head.Nodes)-1].Ast.(*ast.SelectStmt); !ok {
		t.Fatalf("head's last node = %T, want *ast.SelectStmt", head.Nodes[len(head.Nodes)-1].Ast)
	}
	cases := blocksOf(g, "select.case")
	if len(cases) != 3 {
		t.Fatalf("select.case blocks = %d, want 3", len(cases))
	}
	comms := 0
	for _, c := range cases {
		if !hasEdge(head, c) {
			t.Fatalf("head does not edge to clause %v", c)
		}
		if len(c.Nodes) > 0 && c.Nodes[0].Comm {
			comms++
		}
	}
	if comms != 2 {
		t.Fatalf("comm-marked clause heads = %d, want 2 (default has none)", comms)
	}
	// With a default present the head still has no direct edge to the
	// done block — the default clause is one of the successors.
	for _, d := range blocksOf(g, "select.done") {
		if hasEdge(head, d) {
			t.Fatalf("head must not edge directly to select.done")
		}
	}
}

func TestSelectWithoutDefaultHasOnlyCommSuccessors(t *testing.T) {
	g, _, _ := build(t, "select {\ncase <-a:\ncase <-b:\n}")
	for _, s := range g.Entry.Succs {
		if s.Kind != "select.case" {
			t.Fatalf("head successor kind %q, want select.case only", s.Kind)
		}
	}
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("head successors = %d, want 2", len(g.Entry.Succs))
	}
}

func TestTypeSwitchClauses(t *testing.T) {
	g, _, _ := build(t, `
switch v := x.(type) {
case int:
	_ = v
	return
case string:
	_ = v
default:
}
`)
	cases := blocksOf(g, "switch.case")
	if len(cases) != 3 {
		t.Fatalf("switch.case blocks = %d, want 3", len(cases))
	}
	dones := blocksOf(g, "switch.done")
	if len(dones) != 1 {
		t.Fatalf("switch.done blocks = %d, want 1", len(dones))
	}
	// The default clause exists, so the head has no bypass edge.
	if hasEdge(g.Entry, dones[0]) {
		t.Fatalf("head must not edge to switch.done when a default exists")
	}
	// The int clause returns: no successors. The others reach done.
	intoDone := 0
	for _, c := range cases {
		if hasEdge(c, dones[0]) {
			intoDone++
		}
	}
	if intoDone != 2 {
		t.Fatalf("clauses edging to done = %d, want 2 (the returning clause has none)", intoDone)
	}
	if !reachable(g)[g.Exit] {
		t.Fatalf("exit should be reachable through the non-returning clauses")
	}
}

func TestFallthroughChainsToNextClause(t *testing.T) {
	g, _, _ := build(t, `
switch y := 1; y {
case 1:
	fallthrough
case 2:
	_ = y
}
`)
	cases := blocksOf(g, "switch.case")
	if len(cases) != 2 {
		t.Fatalf("switch.case blocks = %d, want 2", len(cases))
	}
	if !hasEdge(cases[0], cases[1]) {
		t.Fatalf("fallthrough clause must edge to the next clause body")
	}
}

func TestInfiniteLoopMakesExitUnreachable(t *testing.T) {
	g, _, _ := build(t, "y := 0\nfor {\ny++\n}")
	if reachable(g)[g.Exit] {
		t.Fatalf("exit must be unreachable past `for {}` with no break")
	}
}

func TestGotoSkipsDeadCode(t *testing.T) {
	g, _, _ := build(t, `
	goto done
	{
		y := 1
		_ = y
	}
done:
	z := 2
	_ = z
`)
	seen := reachable(g)
	if !seen[g.Exit] {
		t.Fatalf("goto done must reach the labeled tail and fall off the end")
	}
	for _, b := range blocksOf(g, "unreachable") {
		if seen[b] {
			t.Fatalf("skipped-over code must stay unreachable")
		}
	}
}

// capAnalysis adapts ChanCaps to the Analysis interface the way
// lockheld does, so the fixpoint behaviour of capacity tracking is
// pinned here independent of any analyzer.
type capAnalysis struct{ info *types.Info }

func (a *capAnalysis) Entry() cfg.Fact     { return cfg.NewChanCaps() }
func (a *capAnalysis) Copy(f cfg.Fact) cfg.Fact {
	return f.(*cfg.ChanCaps).Copy()
}
func (a *capAnalysis) Join(dst, src cfg.Fact) bool {
	return dst.(*cfg.ChanCaps).Join(src.(*cfg.ChanCaps))
}
func (a *capAnalysis) Transfer(n cfg.Node, f cfg.Fact) cfg.Fact {
	c := f.(*cfg.ChanCaps)
	switch st := n.Ast.(type) {
	case *ast.AssignStmt:
		if len(st.Lhs) == len(st.Rhs) {
			for i := range st.Lhs {
				c.Assign(a.info, st.Lhs[i], st.Rhs[i])
			}
		}
	case *ast.SendStmt:
		c.Send(cfg.ExprString(st.Chan), 0, false)
	}
	return c
}

func TestChanCapDataflow(t *testing.T) {
	cases := []struct {
		name string
		body string
		want []bool // provably-non-blocking verdict per send, source order
	}{
		{"first send fits, second exceeds", "ch := make(chan int, 2)\nch <- 1\nch <- 2\nch <- 3", []bool{true, true, false}},
		{"unbuffered make", "ch := make(chan int)\nch <- 1", []bool{false}},
		{"unknown channel", "a <- 1", []bool{false}},
		{"aliasing kills tracking for both names", "ch := make(chan int, 1)\nd := ch\nd <- 1\nch <- 2", []bool{false, false}},
		{"reassignment kills knowledge", "ch := make(chan int, 1)\nch = a\nch <- 1", []bool{false}},
		{"loop send saturates via the back edge", "ch := make(chan int, 1)\nfor i := 0; i < 3; i++ {\nch <- i\n}", []bool{false}},
		{"remake inside loop resets the count", "for i := 0; i < 3; i++ {\nch := make(chan int, 1)\nch <- i\n}", []bool{true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, info, _ := build(t, tc.body)
			an := &capAnalysis{info: info}
			in := cfg.Forward(g, an)
			var got []bool
			cfg.EachReachable(g, an, in, func(n cfg.Node, before cfg.Fact) {
				if st, ok := n.Ast.(*ast.SendStmt); ok {
					c := before.(*cfg.ChanCaps).Copy()
					got = append(got, c.Send(cfg.ExprString(st.Chan), 0, false))
				}
			})
			if len(got) != len(tc.want) {
				t.Fatalf("saw %d sends, want %d", len(got), len(tc.want))
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("send %d verdict = %v, want %v", i, got[i], tc.want[i])
				}
			}
		})
	}
}
