package cfg

// Fact is an analysis-specific dataflow fact. Facts must behave like
// mutable values with reference semantics (maps, or structs holding
// maps): the solver hands ownership explicitly via Copy, and Join
// mutates its first argument in place.
type Fact any

// Analysis is the per-analyzer lattice plugged into Forward. The
// solver drives it to a fixpoint:
//
//   - Entry produces the fact at function entry.
//   - Copy clones a fact so Transfer may mutate freely.
//   - Transfer applies one node's effect to f (mutating and/or
//     returning a replacement) and returns the fact after the node.
//   - Join merges src into dst (mutating dst) and reports whether dst
//     changed; it must be monotone or the fixpoint may not terminate.
//
// Transfer must be deterministic: the reporting pass re-runs it over
// the fixed-point block-entry facts, and both passes must see the
// same states.
type Analysis interface {
	Entry() Fact
	Copy(f Fact) Fact
	Transfer(n Node, f Fact) Fact
	Join(dst, src Fact) bool
}

// Forward runs the worklist fixpoint and returns the fact at entry to
// every reachable block. Unreachable blocks (dead code after return,
// the Exit of a function that never falls off the end) have no entry
// in the map — callers use `in[g.Exit]` presence as the "can control
// fall off the end" test.
func Forward(g *Graph, an Analysis) map[*Block]Fact {
	in := map[*Block]Fact{g.Entry: an.Entry()}
	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		f := an.Copy(in[b])
		for _, n := range b.Nodes {
			f = an.Transfer(n, f)
		}
		for _, s := range b.Succs {
			old, ok := in[s]
			changed := false
			if !ok {
				in[s] = an.Copy(f)
				changed = true
			} else {
				changed = an.Join(old, f)
			}
			if changed && !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return in
}

// EachReachable replays Transfer once over every reachable block in
// index order, calling visit with the fact in force *before* each
// node. This is the reporting pass: run Forward first, then walk the
// converged facts emitting findings (each node is visited exactly
// once, with the join over all paths that reach it).
func EachReachable(g *Graph, an Analysis, in map[*Block]Fact, visit func(n Node, before Fact)) {
	for _, b := range g.Blocks {
		entry, ok := in[b]
		if !ok {
			continue
		}
		f := an.Copy(entry)
		for _, n := range b.Nodes {
			visit(n, f)
			f = an.Transfer(n, f)
		}
	}
}
