package lint

import (
	"go/ast"
	"go/types"
)

// FaultErr enforces the fault-signalling contract: on the APIs where
// an error result *is* the failure notification — transport Send/Recv,
// the core p2p/collective entry points, checkpoint store and coder
// operations — the error may not be discarded. Sending to a dead peer
// is silent (PSM semantics), so a dropped error on these paths turns
// transparent recovery into a silent hang: the rank never learns the
// peer died and never re-enters the recovery protocol.
//
// A call's error is "discarded" when the call stands alone as a
// statement, runs under go/defer, or has its error result assigned to
// the blank identifier.
var FaultErr = &Analyzer{
	Name: "faulterr",
	Doc:  "error results of fault-signalling APIs must not be discarded",
	Run:  runFaultErr,
}

// faultAPIs names the fault-signalling functions per declaring package
// name. Matching by package *name* (not full path) keeps the table
// valid for both the real module and the test fixtures.
var faultAPIs = map[string]map[string]bool{
	"transport": set("Send", "Recv", "TryRecv", "PostRecv", "Await", "Connect"),
	"core": set("Send", "Recv", "Sendrecv", "TryRecv", "Isend", "Irecv", "Wait", "WaitAll",
		"Barrier", "Bcast", "Reduce", "Allreduce", "Gather", "Allgather", "Scatter", "Alltoall"),
	"ckpt": set("Send", "Recv", "Restore", "EncodeRing", "DecodeRing", "Encode", "Reconstruct"),
	"coll": set("Send", "Recv"),
	"fmi": set("Send", "Recv", "Sendrecv", "Barrier", "Bcast", "Reduce", "Allreduce",
		"Gather", "Allgather", "Scatter", "Alltoall"),
}

func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

func runFaultErr(prog *Program, report Reporter) {
	ifaces := faultInterfaces(prog)
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					if call, ok := n.X.(*ast.CallExpr); ok {
						checkDiscard(prog, pkg, call, ifaces, report, "result ignored")
						return true
					}
				case *ast.GoStmt:
					checkDiscard(prog, pkg, n.Call, ifaces, report, "result ignored by go statement")
				case *ast.DeferStmt:
					checkDiscard(prog, pkg, n.Call, ifaces, report, "result ignored by defer")
				case *ast.AssignStmt:
					checkBlankAssign(prog, pkg, n, ifaces, report)
				}
				return true
			})
		}
	}
}

// faultIface is an interface that carries the fault signal, together
// with the fault-method names it contributes (only the names from the
// declaring package's faultAPIs row — an interface's unrelated
// error-returning methods, like Close, are not fault APIs).
type faultIface struct {
	iface   *types.Interface
	methods map[string]bool
}

// faultInterfaces collects the interface types declared in the
// messaging/checkpoint packages whose methods carry the fault signal
// (an error result): transport.Endpoint, ckpt.GroupComm, the coll
// transport, and friends. Concrete implementations of these interfaces
// (test harnesses, experiment shims) inherit the contract even though
// they live in other packages.
func faultInterfaces(prog *Program) []faultIface {
	var out []faultIface
	for _, pkg := range prog.Packages {
		if faultAPIs[pkg.Name] == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			iface, ok := tn.Type().Underlying().(*types.Interface)
			if !ok {
				continue
			}
			fi := faultIface{iface: iface, methods: map[string]bool{}}
			for i := 0; i < iface.NumMethods(); i++ {
				m := iface.Method(i)
				if faultAPIs[pkg.Name][m.Name()] && lastResultIsError(m) {
					fi.methods[m.Name()] = true
				}
			}
			if len(fi.methods) > 0 {
				out = append(out, fi)
			}
		}
	}
	return out
}

func lastResultIsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// faultCall resolves whether call targets a fault-signalling API whose
// last result is an error, returning a printable name.
func faultCall(pkg *Package, call *ast.CallExpr, ifaces []faultIface) (string, bool) {
	var fn *types.Func
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if selection, ok := pkg.Info.Selections[fun]; ok {
			fn, _ = selection.Obj().(*types.Func)
		} else if obj, ok := pkg.Info.Uses[fun.Sel]; ok {
			fn, _ = obj.(*types.Func) // package-qualified call
		}
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[fun]; ok {
			fn, _ = obj.(*types.Func)
		}
	}
	if fn == nil || fn.Pkg() == nil || !lastResultIsError(fn) {
		return "", false
	}
	name := fn.Name()
	if names, ok := faultAPIs[fn.Pkg().Name()]; ok && names[name] {
		return fn.Pkg().Name() + "." + name, true
	}
	// A method on a concrete type implementing a fault interface.
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		for _, fi := range ifaces {
			if fi.methods[name] &&
				(types.Implements(recv.Type(), fi.iface) ||
					types.Implements(types.NewPointer(recv.Type()), fi.iface)) {
				return fn.Pkg().Name() + "." + name, true
			}
		}
	}
	return "", false
}

func checkDiscard(prog *Program, pkg *Package, call *ast.CallExpr, ifaces []faultIface, report Reporter, how string) {
	if name, ok := faultCall(pkg, call, ifaces); ok {
		report(call.Pos(), "%s error %s; on fault paths this error is the failure notification", name, how)
	}
}

// checkBlankAssign flags `_ = c.Send(...)` and `v, _ := c.Recv(...)`
// where the blank identifier lands on the error result.
func checkBlankAssign(prog *Program, pkg *Package, as *ast.AssignStmt, ifaces []faultIface, report Reporter) {
	// Single call on the RHS feeding all LHS targets.
	if len(as.Rhs) == 1 {
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		if len(as.Lhs) == 0 {
			return
		}
		if isBlank(as.Lhs[len(as.Lhs)-1]) {
			checkDiscard(prog, pkg, call, ifaces, report, "assigned to _")
		}
		return
	}
	// Parallel assignment: position-matched.
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || i >= len(as.Lhs) {
			continue
		}
		if isBlank(as.Lhs[i]) {
			checkDiscard(prog, pkg, call, ifaces, report, "assigned to _")
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
