// Package lint is fmilint's engine: a stdlib-only static-analysis
// driver (go/parser + go/types with the source importer — the module
// has no external dependencies and must stay that way) plus the domain
// analyzers that machine-check the fault-tolerance invariants the Go
// compiler cannot see. See DESIGN.md §3e for the invariants and the
// failure modes each analyzer guards against.
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path within the module
	Dir   string
	Name  string // package name
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is a whole loaded module: every package under the root,
// type-checked against each other and the standard library. Analyzers
// receive the Program so cross-package invariants (a trace kind
// declared in one package must be emitted in another) are checkable.
type Program struct {
	Fset     *token.FileSet
	Module   string
	Packages []*Package // sorted by import path

	fieldCaps map[*types.Var]int // lazily built by chanFieldCaps
}

// Lookup returns the loaded package with the given import path, or nil.
func (prog *Program) Lookup(path string) *Package {
	for _, p := range prog.Packages {
		if p.Path == path {
			return p
		}
	}
	return nil
}

// LoadModule loads the module rooted at dir (which must contain
// go.mod), deriving the module path from the go.mod file.
func LoadModule(dir string) (*Program, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	mod := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			mod = strings.TrimSpace(rest)
			break
		}
	}
	if mod == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", dir)
	}
	return Load(dir, mod)
}

// Load parses and type-checks every package under root, treating
// import paths prefixed with modulePath as module-internal. Only
// non-test files are loaded: the invariants guard runtime code, and
// tests legitimately use wall-clock time, raw literals, and discarded
// errors. Directories named testdata or vendor (and hidden or
// underscore-prefixed ones) are skipped, mirroring the go tool.
func Load(root, modulePath string) (*Program, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	ld := &loader{
		fset: token.NewFileSet(),
		dirs: map[string]string{},
		pkgs: map[string]*Package{},
	}
	// The source importer type-checks stdlib dependencies from
	// $GOROOT/src. Cgo variants (net, os/user) are avoided by forcing
	// the pure-Go build so the importer never needs a C toolchain.
	build.Default.CgoEnabled = false
	ld.std = importer.ForCompiler(ld.fset, "source", nil)

	if err := filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != abs && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if !hasGoFiles(path) {
			return nil
		}
		rel, err := filepath.Rel(abs, path)
		if err != nil {
			return err
		}
		ip := modulePath
		if rel != "." {
			ip = modulePath + "/" + filepath.ToSlash(rel)
		}
		ld.dirs[ip] = path
		return nil
	}); err != nil {
		return nil, err
	}

	paths := make([]string, 0, len(ld.dirs))
	for ip := range ld.dirs {
		paths = append(paths, ip)
	}
	sort.Strings(paths)
	prog := &Program{Fset: ld.fset, Module: modulePath}
	for _, ip := range paths {
		pkg, err := ld.load(ip)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			prog.Packages = append(prog.Packages, pkg)
		}
	}
	return prog, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// loader resolves module-internal imports to freshly type-checked
// packages (memoized) and delegates everything else to the stdlib
// source importer.
type loader struct {
	fset  *token.FileSet
	dirs  map[string]string // import path -> directory
	pkgs  map[string]*Package
	std   types.Importer
	stack []string // in-progress loads, for cycle reporting
}

// Import implements types.Importer for the type-checker's benefit.
func (ld *loader) Import(path string) (*types.Package, error) {
	if _, ok := ld.dirs[path]; ok {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: package %s has no Go files", path)
		}
		return pkg.Types, nil
	}
	return ld.std.Import(path)
}

func (ld *loader) load(ip string) (*Package, error) {
	if pkg, ok := ld.pkgs[ip]; ok {
		return pkg, nil
	}
	for _, busy := range ld.stack {
		if busy == ip {
			return nil, fmt.Errorf("lint: import cycle through %s", ip)
		}
	}
	ld.stack = append(ld.stack, ip)
	defer func() { ld.stack = ld.stack[:len(ld.stack)-1] }()

	dir := ld.dirs[ip]
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		ld.pkgs[ip] = nil
		return nil, nil
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(ip, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", ip, err)
	}
	pkg := &Package{
		Path:  ip,
		Dir:   dir,
		Name:  tpkg.Name(),
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	ld.pkgs[ip] = pkg
	return pkg, nil
}
