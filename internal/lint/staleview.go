package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// StaleView guards the elastic-membership contract at the application
// boundary: the world size reported by Size() is only valid until the
// next Loop call, because Loop is where a resize fence commits and the
// membership view changes. A value read from Size() (or derived from
// it in the same assignment) that is cached before a Loop call site
// and reused after it silently pins the old world — partner maps,
// contribution counts, and checksums computed from it are wrong the
// moment the job grows or shrinks. The analysis is intraprocedural and
// lexical, matching the code shape that actually goes wrong: a
// size-derived variable assigned before a Loop and mentioned after
// it. Re-reading Size() after each Loop (the correct idiom) places the
// assignment after the view-change site and is never flagged. The
// core and fmi packages themselves are exempt — they implement the
// view change and juggle pre/post-fence sizes by design.
var StaleView = &Analyzer{
	Name: "staleview",
	Doc:  "a Size()-derived value cached before Loop must not be reused after it: the membership view may have changed",
	Run:  runStaleView,
}

// staleViewReads are the world-shape accessors whose results go stale
// at a view change; staleViewRecv names the types that carry them and
// the Loop view-change call site.
var (
	staleViewReads = map[string]bool{"Size": true}
	staleViewRecv  = map[string]bool{"Proc": true, "Env": true, "Comm": true}
)

func runStaleView(prog *Program, report Reporter) {
	for _, pkg := range prog.Packages {
		if pkg.Name == "core" || pkg.Name == "fmi" {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil {
						analyzeStaleBody(pkg, report, n.Body)
					}
				case *ast.FuncLit:
					analyzeStaleBody(pkg, report, n.Body)
				}
				return true
			})
		}
	}
}

// analyzeStaleBody checks one function body. Nested function literals
// are skipped here — the file walk hands each its own pass.
func analyzeStaleBody(pkg *Package, report Reporter, body *ast.BlockStmt) {
	// Pass 1: positions of size-derived assignments and Loop calls.
	cached := map[types.Object][]token.Pos{} // var -> assignment positions
	assignLHS := map[*ast.Ident]bool{}       // idents that are write targets, not reads
	var loops []token.Pos
	walkSkippingFuncLits(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				rhs := n.Rhs[0]
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				if !containsStaleRead(pkg, rhs) {
					continue
				}
				obj := pkg.Info.Defs[id]
				if obj == nil {
					obj = pkg.Info.Uses[id]
					assignLHS[id] = true
				}
				if obj != nil {
					cached[obj] = append(cached[obj], id.Pos())
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				if id.Name == "_" || i >= len(n.Values) || !containsStaleRead(pkg, n.Values[i]) {
					continue
				}
				if obj := pkg.Info.Defs[id]; obj != nil {
					cached[obj] = append(cached[obj], id.Pos())
				}
			}
		case *ast.CallExpr:
			if isViewChangeCall(pkg, n) {
				loops = append(loops, n.Pos())
			}
		}
	})
	if len(cached) == 0 || len(loops) == 0 {
		return
	}
	// Pass 2: a use is stale when its governing assignment (the last
	// one before it) sits on the far side of a Loop call. One report
	// per variable keeps a cached loop body from repeating itself.
	reported := map[types.Object]bool{}
	walkSkippingFuncLits(body, func(n ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok || assignLHS[id] {
			return
		}
		obj := pkg.Info.Uses[id]
		if obj == nil || reported[obj] {
			return
		}
		assigns, ok := cached[obj]
		if !ok {
			return
		}
		governing := token.NoPos
		for _, a := range assigns {
			if a < id.Pos() && a > governing {
				governing = a
			}
		}
		if governing == token.NoPos {
			return
		}
		for _, l := range loops {
			if governing < l && l < id.Pos() {
				reported[obj] = true
				report(id.Pos(), "%s caches Size() from before a Loop call; the membership view may have changed — re-read it after every Loop", id.Name)
				return
			}
		}
	})
}

// walkSkippingFuncLits visits every node in body except the insides of
// nested function literals.
func walkSkippingFuncLits(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// containsStaleRead reports whether the expression's value depends on
// a Size() call on a Proc, Env, or Comm receiver.
func containsStaleRead(pkg *Package, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if ok && staleViewReads[sel.Sel.Name] && isViewRecv(pkg, sel.X) {
			found = true
		}
		return true
	})
	return found
}

// isViewChangeCall reports whether call is Loop on a Proc or Env.
func isViewChangeCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Loop" && isViewRecv(pkg, sel.X)
}

// isViewRecv reports whether the expression's type is (a pointer to)
// one of the view-carrying named types.
func isViewRecv(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && staleViewRecv[named.Obj().Name()]
}
