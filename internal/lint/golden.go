package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// The golden-test harness: fixture packages under testdata/src/<name>
// carry `// want "regexp"` annotations on the lines where an analyzer
// must report, and clean lines carry nothing. CheckFixture loads the
// fixture as its own mini-module, runs the given analyzers, and
// returns one diagnostic string per mismatch — an unexpected finding,
// or a want with no matching finding. An empty slice means the fixture
// is golden.
//
// The comparison matches each want regexp against the full
// "[analyzer] message" string, so fixtures can pin the analyzer name,
// the message, or both.

var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// CheckFixture runs analyzers over the fixture directory (loaded with
// the directory's base name as its module path) and diffs the findings
// against the fixture's want annotations.
func CheckFixture(dir string, analyzers ...*Analyzer) ([]string, error) {
	prog, err := Load(dir, filepath.Base(dir))
	if err != nil {
		return nil, err
	}
	findings := Run(prog, analyzers)

	type want struct {
		re      *regexp.Regexp
		raw     string
		matched bool
	}
	wants := map[string][]*want{} // "file:line" -> wants
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	err = filepath.WalkDir(absDir, func(path string, d os.DirEntry, werr error) error {
		if werr != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return werr
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				pat := strings.ReplaceAll(m[1], `\"`, `"`)
				re, err := regexp.Compile(pat)
				if err != nil {
					return fmt.Errorf("%s:%d: bad want pattern %q: %v", path, line, pat, err)
				}
				key := fmt.Sprintf("%s:%d", path, line)
				wants[key] = append(wants[key], &want{re: re, raw: pat})
			}
		}
		return sc.Err()
	})
	if err != nil {
		return nil, err
	}

	var diags []string
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		text := fmt.Sprintf("[%s] %s", f.Analyzer, f.Message)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(text) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			diags = append(diags, fmt.Sprintf("unexpected finding at %s: %s", key, text))
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				diags = append(diags, fmt.Sprintf("no finding matched want %q at %s", w.raw, k))
			}
		}
	}
	return diags, nil
}
