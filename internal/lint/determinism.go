package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fmi/internal/lint/cfg"
)

// Determinism enforces the piecewise-deterministic-execution contract
// the recovery protocols stand on: local replay re-executes a rank
// against its logged receives, and replica mode runs primary/shadow
// pairs in lockstep with mirrored sends — both silently corrupt state
// if re-executed code can diverge from the original run. Three
// nondeterminism shapes are flagged, scoped to the code that actually
// re-executes (core, replica, serve, and the examples):
//
//  1. map-iteration order escaping: a value derived from ranging over
//     a map that reaches a send — a Send/Isend/Sendrecv/Submit call,
//     a trace Recorder.Add/AddView, or a raw channel send — inside
//     the loop body;
//  2. the process-global math/rand source, whose stream differs
//     between the original run and any re-execution;
//  3. a select whose comm cases sit on provably-buffered channels
//     (capacity const-propagated over the CFG): more than one case
//     can be ready at once and the runtime picks uniformly at random.
//
// The taint tracking in (1) is per loop body and flow-insensitive; a
// key stashed in a slice and sent after the loop is out of reach, as
// is nondeterminism laundered through a call. The point is the
// pattern review keeps missing, not a soundness proof.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "replay/lockstep-executed code must not leak map order, global rand, or multi-ready selects",
	Run:  runDeterminism,
}

// determinismScoped reports whether a package's code re-executes
// under replay or lockstep: the protocol engine itself, the replica
// registry/store, the serve registry apps, and the examples (which
// document the programming model users copy).
func determinismScoped(pkg *Package) bool {
	switch pkg.Name {
	case "core", "replica", "serve":
		return true
	}
	return strings.HasPrefix(pkg.Path, "examples/") || strings.Contains(pkg.Path, "/examples/")
}

func runDeterminism(prog *Program, report Reporter) {
	fcaps := prog.chanFieldCaps()
	for _, pkg := range prog.Packages {
		if !determinismScoped(pkg) {
			continue
		}
		for _, f := range pkg.Files {
			checkGlobalRand(pkg, f, report)
			checkMapRangeTaint(pkg, f, report)
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil {
						checkBufferedSelects(pkg, fcaps, report, n.Body)
					}
				case *ast.FuncLit:
					checkBufferedSelects(pkg, fcaps, report, n.Body)
				}
				return true
			})
		}
	}
}

// checkGlobalRand flags every call to a package-level math/rand (or
// math/rand/v2) function: those draw from the implicitly-seeded
// process-global source. Methods on an explicitly-seeded *rand.Rand
// are fine — that is the prescribed fix.
func checkGlobalRand(pkg *Package, f *ast.File, report Reporter) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var fn *types.Func
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			fn, _ = pkg.Info.Uses[fun.Sel].(*types.Func)
		case *ast.Ident:
			fn, _ = pkg.Info.Uses[fun].(*types.Func)
		}
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		path := fn.Pkg().Path()
		if path != "math/rand" && path != "math/rand/v2" {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return true // method on an explicit *rand.Rand
		}
		if strings.HasPrefix(fn.Name(), "New") {
			return true // New/NewSource/NewPCG construct explicit sources — the prescribed fix
		}
		report(call.Pos(), "math/rand.%s draws from the process-global source: re-executed code sees a different stream under replay/lockstep — use a rank-seeded rand.New(rand.NewSource(...))", fn.Name())
		return true
	})
}

// checkMapRangeTaint implements rule (1): for every `range` over a
// map, taint the key/value variables, propagate through assignments
// inside the loop body to a fixpoint, and flag any send-like sink an
// tainted value reaches within that body.
func checkMapRangeTaint(pkg *Package, f *ast.File, report Reporter) {
	ast.Inspect(f, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, found := pkg.Info.Types[rng.X]
		if !found {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		tainted := map[types.Object]bool{}
		seed := func(e ast.Expr) {
			id, isID := e.(*ast.Ident)
			if !isID || id.Name == "_" {
				return
			}
			if obj := pkg.Info.Defs[id]; obj != nil {
				tainted[obj] = true
			} else if obj := pkg.Info.Uses[id]; obj != nil {
				tainted[obj] = true
			}
		}
		if rng.Key != nil {
			seed(rng.Key)
		}
		if rng.Value != nil {
			seed(rng.Value)
		}
		if len(tainted) == 0 {
			return true
		}
		propagateTaint(pkg, rng.Body, tainted)
		reportTaintSinks(pkg, rng, tainted, report)
		return true
	})
}

func taintedExpr(pkg *Package, tainted map[types.Object]bool, e ast.Expr) bool {
	if e == nil {
		return false
	}
	hit := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pkg.Info.Uses[id]; obj != nil && tainted[obj] {
			hit = true
		}
		return !hit
	})
	return hit
}

// propagateTaint closes the tainted set over assignments, short
// declarations, and nested ranges within the loop body.
func propagateTaint(pkg *Package, body *ast.BlockStmt, tainted map[types.Object]bool) {
	taintLhs := func(e ast.Expr) bool {
		id, isID := ast.Unparen(e).(*ast.Ident)
		if !isID || id.Name == "_" {
			return false
		}
		var obj types.Object
		if obj = pkg.Info.Defs[id]; obj == nil {
			obj = pkg.Info.Uses[id]
		}
		if obj == nil || tainted[obj] {
			return false
		}
		tainted[obj] = true
		return true
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						if taintedExpr(pkg, tainted, n.Rhs[i]) && taintLhs(n.Lhs[i]) {
							changed = true
						}
					}
				} else {
					any := false
					for _, rhs := range n.Rhs {
						if taintedExpr(pkg, tainted, rhs) {
							any = true
						}
					}
					if any {
						for _, lhs := range n.Lhs {
							if taintLhs(lhs) {
								changed = true
							}
						}
					}
				}
			case *ast.ValueSpec:
				any := false
				for _, v := range n.Values {
					if taintedExpr(pkg, tainted, v) {
						any = true
					}
				}
				if any {
					for _, name := range n.Names {
						if taintLhs(name) {
							changed = true
						}
					}
				}
			case *ast.RangeStmt:
				if taintedExpr(pkg, tainted, n.X) {
					if n.Key != nil && taintLhs(n.Key) {
						changed = true
					}
					if n.Value != nil && taintLhs(n.Value) {
						changed = true
					}
				}
			}
			return true
		})
	}
}

// sendSinkNames are method names whose calls carry data off-rank: the
// communicator surface (Send/Isend/Sendrecv), the job service's
// Submit, and the trace Recorder's Add/AddView (checkpoint/trace
// payloads that replay validation compares run-to-run). Add/AddView
// count only on a receiver type actually named Recorder.
var sendSinkNames = map[string]bool{
	"Send": true, "Isend": true, "Sendrecv": true, "Submit": true,
}

func reportTaintSinks(pkg *Package, rng *ast.RangeStmt, tainted map[types.Object]bool, report Reporter) {
	mapName := cfg.ExprString(rng.X)
	seen := map[token.Pos]bool{}
	emit := func(pos token.Pos, sink string) {
		if seen[pos] {
			return
		}
		seen[pos] = true
		report(pos, "value derived from ranging over map %s reaches %s: map iteration order is nondeterministic and diverges under replay/lockstep re-execution — iterate keys in sorted order", mapName, sink)
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, isSel := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !isSel {
				return true
			}
			name := sel.Sel.Name
			isSink := sendSinkNames[name]
			if !isSink && (name == "Add" || name == "AddView") {
				isSink = recvIsRecorder(pkg, sel.X)
			}
			if !isSink {
				return true
			}
			hit := taintedExpr(pkg, tainted, sel.X)
			for _, arg := range n.Args {
				if taintedExpr(pkg, tainted, arg) {
					hit = true
				}
			}
			if hit {
				emit(n.Pos(), cfg.ExprString(n.Fun)+"(...)")
			}
		case *ast.SendStmt:
			if taintedExpr(pkg, tainted, n.Chan) || taintedExpr(pkg, tainted, n.Value) {
				emit(n.Pos(), "a channel send")
			}
		}
		return true
	})
}

// recvIsRecorder reports whether the receiver expression's type
// (through a pointer) is a named type called Recorder.
func recvIsRecorder(pkg *Package, recv ast.Expr) bool {
	tv, found := pkg.Info.Types[recv]
	if !found {
		return false
	}
	t := tv.Type
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Recorder"
}

// checkBufferedSelects implements rule (3): run capacity
// const-propagation over the body's CFG and flag selects where two or
// more comm cases sit on channels with provable capacity ≥ 1 — those
// can both be ready, and the select winner is then a coin flip the
// shadow replays differently.
func checkBufferedSelects(pkg *Package, fcaps map[*types.Var]int, report Reporter, body *ast.BlockStmt) {
	g := cfg.New(body)
	an := &selectCapAnalysis{pkg: pkg}
	in := cfg.Forward(g, an)
	cfg.EachReachable(g, an, in, func(n cfg.Node, before cfg.Fact) {
		sel, ok := n.Ast.(*ast.SelectStmt)
		if ok && !n.Comm {
			caps := before.(*cfg.ChanCaps)
			buffered := 0
			for _, c := range sel.Body.List {
				cc, isCC := c.(*ast.CommClause)
				if !isCC || cc.Comm == nil {
					continue
				}
				ch := commChannel(cc.Comm)
				if ch == nil {
					continue
				}
				if chanCapKnown(pkg, fcaps, caps, ch) {
					buffered++
				}
			}
			if buffered >= 2 {
				report(sel.Pos(), "select has %d comm cases on provably-buffered channels: more than one can be ready at once and the winner is nondeterministic under replay/lockstep re-execution — impose a deterministic drain order", buffered)
			}
		}
	})
}

// commChannel extracts the channel operand of a select comm statement.
func commChannel(comm ast.Stmt) ast.Expr {
	switch st := comm.(type) {
	case *ast.SendStmt:
		return st.Chan
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(st.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			return u.X
		}
	case *ast.AssignStmt:
		if len(st.Rhs) == 1 {
			if u, ok := ast.Unparen(st.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return u.X
			}
		}
	}
	return nil
}

// chanCapKnown reports whether the channel expression has a provable
// constant capacity ≥ 1, locally or via the field table.
func chanCapKnown(pkg *Package, fcaps map[*types.Var]int, caps *cfg.ChanCaps, ch ast.Expr) bool {
	key := cfg.ExprString(ast.Unparen(ch))
	if n, ok := caps.Cap[key]; ok {
		return n >= 1
	}
	if sel, ok := ast.Unparen(ch).(*ast.SelectorExpr); ok {
		if selection, found := pkg.Info.Selections[sel]; found && selection.Kind() == types.FieldVal {
			if field, isVar := selection.Obj().(*types.Var); isVar {
				if n, ok := fcaps[field]; ok {
					return n >= 1
				}
			}
		}
	}
	return false
}

// selectCapAnalysis tracks make(chan T, N) capacities for rule (3):
// only assignments and declarations matter, sends are irrelevant.
type selectCapAnalysis struct{ pkg *Package }

func (a *selectCapAnalysis) Entry() cfg.Fact { return cfg.NewChanCaps() }

func (a *selectCapAnalysis) Copy(f cfg.Fact) cfg.Fact {
	return f.(*cfg.ChanCaps).Copy()
}

func (a *selectCapAnalysis) Join(dst, src cfg.Fact) bool {
	return dst.(*cfg.ChanCaps).Join(src.(*cfg.ChanCaps))
}

func (a *selectCapAnalysis) Transfer(n cfg.Node, f cfg.Fact) cfg.Fact {
	c := f.(*cfg.ChanCaps)
	switch st := n.Ast.(type) {
	case *ast.AssignStmt:
		if len(st.Lhs) == len(st.Rhs) {
			for i := range st.Lhs {
				c.Assign(a.pkg.Info, st.Lhs[i], st.Rhs[i])
			}
		} else {
			for _, lhs := range st.Lhs {
				c.Kill(cfg.ExprString(lhs))
			}
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, isVS := spec.(*ast.ValueSpec)
				if !isVS {
					continue
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					if len(vs.Values) == len(vs.Names) && i < len(vs.Values) {
						rhs = vs.Values[i]
					}
					c.Assign(a.pkg.Info, name, rhs)
				}
			}
		}
	case *ast.RangeStmt:
		if st.Key != nil {
			c.Kill(cfg.ExprString(st.Key))
		}
		if st.Value != nil {
			c.Kill(cfg.ExprString(st.Value))
		}
	}
	return c
}
