package lint_test

import (
	"encoding/json"
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"fmi/internal/lint"
)

// checkGolden runs one analyzer fixture through the golden harness and
// fails with one line per mismatch.
func checkGolden(t *testing.T, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	diags, err := lint.CheckFixture(dir, analyzers...)
	if err != nil {
		t.Fatalf("CheckFixture(%s): %v", dir, err)
	}
	for _, d := range diags {
		t.Error(d)
	}
}

func TestTraceKindFixture(t *testing.T) {
	checkGolden(t, filepath.Join("testdata", "src", "tracekind"), lint.TraceKind)
}

func TestLockHeldFixture(t *testing.T) {
	checkGolden(t, filepath.Join("testdata", "src", "lockheld"), lint.LockHeld)
}

func TestFaultErrFixture(t *testing.T) {
	checkGolden(t, filepath.Join("testdata", "src", "faulterr"), lint.FaultErr)
}

func TestSimTimeFixture(t *testing.T) {
	checkGolden(t, filepath.Join("testdata", "src", "simtime"), lint.SimTime)
}

func TestBufReleaseFixture(t *testing.T) {
	checkGolden(t, filepath.Join("testdata", "src", "bufrelease"), lint.BufRelease)
}

func TestStaleViewFixture(t *testing.T) {
	checkGolden(t, filepath.Join("testdata", "src", "staleview"), lint.StaleView)
}

// TestIgnoreFixture covers the suppression directive's line scopes
// (same line, line above, file-wide) and its analyzer specificity.
// The full suite runs so a directive aimed at another real analyzer
// is valid-but-inapplicable rather than unknown.
func TestIgnoreFixture(t *testing.T) {
	checkGolden(t, filepath.Join("testdata", "src", "ignore"), lint.All()...)
}

// TestBadIgnoreDirectives asserts the driver findings for malformed
// and unknown-analyzer directives directly: a want comment cannot
// share the directive's line without becoming part of the directive,
// so this fixture bypasses the golden harness.
func TestBadIgnoreDirectives(t *testing.T) {
	dir := filepath.Join("testdata", "src", "badignore")
	prog, err := lint.Load(dir, filepath.Base(dir))
	if err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	findings := lint.Run(prog, []*lint.Analyzer{lint.SimTime})

	got := make([]string, len(findings))
	for i, f := range findings {
		got[i] = fmt.Sprintf("%s:%d: [%s] %s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Analyzer, f.Message)
	}
	want := []string{
		`cluster.go:12: [fmilint] malformed //fmilint:ignore directive: need "//fmilint:ignore <analyzer> <reason>"`,
		`cluster.go:13: [simtime] direct time.Now in simulated package "cluster"; route timing through the cluster's event hooks or the transport delay queue`,
		`cluster.go:18: [fmilint] ignore directive names unknown analyzer "bogus"`,
		`cluster.go:19: [simtime] direct time.Now in simulated package "cluster"; route timing through the cluster's event hooks or the transport delay queue`,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding %d:\n  got  %s\n  want %s", i, got[i], want[i])
		}
	}
}

// TestMainExitCodes runs the command body over three mini-modules, one
// per exit code.
func TestMainExitCodes(t *testing.T) {
	cases := []struct {
		dir  string
		want int
	}{
		{filepath.Join("testdata", "exit", "clean"), lint.ExitClean},
		{filepath.Join("testdata", "exit", "findings"), lint.ExitFindings},
		{filepath.Join("testdata", "exit", "badtype"), lint.ExitLoadErr},
	}
	for _, c := range cases {
		var out bytes.Buffer
		if got := lint.Main(c.dir, &out, false); got != c.want {
			t.Errorf("Main(%s) = %d, want %d\noutput:\n%s", c.dir, got, c.want, out.String())
		}
	}
}

// TestMainTrimsPatternSuffix checks that the "./..." spelling of the
// go tool is accepted.
func TestMainTrimsPatternSuffix(t *testing.T) {
	var out bytes.Buffer
	root := filepath.Join("testdata", "exit", "clean") + "/..."
	if got := lint.Main(root, &out, false); got != lint.ExitClean {
		t.Errorf("Main(%s) = %d, want %d\noutput:\n%s", root, got, lint.ExitClean, out.String())
	}
}

// TestFindingsOutput pins the report format and summary line.
func TestFindingsOutput(t *testing.T) {
	var out bytes.Buffer
	lint.Main(filepath.Join("testdata", "exit", "findings"), &out, false)
	text := out.String()
	if !strings.Contains(text, `: [simtime] direct time.Now in simulated package "cluster"`) {
		t.Errorf("missing file:line: [analyzer] message report in output:\n%s", text)
	}
	if !strings.Contains(text, "fmilint: 1 finding(s)") {
		t.Errorf("missing summary line in output:\n%s", text)
	}
}

// TestAllSuite guards the registered analyzer set: the suppression
// grammar and docs name these eight.
func TestAllSuite(t *testing.T) {
	var names []string
	for _, a := range lint.All() {
		names = append(names, a.Name)
		if a.Doc == "" {
			t.Errorf("analyzer %s has no doc string", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run", a.Name)
		}
	}
	want := []string{"tracekind", "lockheld", "faulterr", "simtime", "bufrelease", "staleview", "determinism", "lockorder"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("All() = %v, want %v", names, want)
	}
}

func TestDeterminismFixture(t *testing.T) {
	checkGolden(t, filepath.Join("testdata", "src", "determinism"), lint.Determinism)
}

func TestLockOrderFixture(t *testing.T) {
	checkGolden(t, filepath.Join("testdata", "src", "lockorder"), lint.LockOrder)
}

// TestMainJSON pins the -json report shape on a module with one
// unsuppressed determinism finding and one suppressed one: the
// suppressed finding stays in the inventory, the exit code counts
// only the unsuppressed.
func TestMainJSON(t *testing.T) {
	var out bytes.Buffer
	got := lint.Main(filepath.Join("testdata", "exit", "detfindings"), &out, true)
	if got != lint.ExitFindings {
		t.Fatalf("Main = %d, want %d\noutput:\n%s", got, lint.ExitFindings, out.String())
	}
	var rep struct {
		Module   string `json:"module"`
		Findings []struct {
			File       string `json:"file"`
			Line       int    `json:"line"`
			Analyzer   string `json:"analyzer"`
			Message    string `json:"message"`
			Suppressed bool   `json:"suppressed"`
		} `json:"findings"`
		Unsuppressed int `json:"unsuppressed"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if rep.Module != "detfindings" {
		t.Errorf("module = %q, want detfindings", rep.Module)
	}
	if rep.Unsuppressed != 1 {
		t.Errorf("unsuppressed = %d, want 1", rep.Unsuppressed)
	}
	if len(rep.Findings) != 2 {
		t.Fatalf("got %d findings, want 2:\n%s", len(rep.Findings), out.String())
	}
	for i, want := range []struct {
		analyzer   string
		msgPart    string
		suppressed bool
	}{
		{"determinism", "map iteration order is nondeterministic", false},
		{"determinism", "process-global source", true},
	} {
		f := rep.Findings[i]
		if f.Analyzer != want.analyzer || f.Suppressed != want.suppressed || !strings.Contains(f.Message, want.msgPart) {
			t.Errorf("finding %d = %+v, want analyzer %s suppressed %v message containing %q", i, f, want.analyzer, want.suppressed, want.msgPart)
		}
		if f.File == "" || f.Line == 0 {
			t.Errorf("finding %d missing position: %+v", i, f)
		}
	}
}

// TestJSONLoadError pins the error shape: a JSON object with the
// error string and an empty findings array, exit code 2.
func TestJSONLoadError(t *testing.T) {
	var out bytes.Buffer
	if got := lint.Main(filepath.Join("testdata", "exit", "badtype"), &out, true); got != lint.ExitLoadErr {
		t.Fatalf("Main = %d, want %d", got, lint.ExitLoadErr)
	}
	var rep struct {
		Error    string            `json:"error"`
		Findings []json.RawMessage `json:"findings"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if rep.Error == "" {
		t.Errorf("error field empty:\n%s", out.String())
	}
	if rep.Findings == nil || len(rep.Findings) != 0 {
		t.Errorf("findings = %v, want present and empty", rep.Findings)
	}
}

// TestRepoSelfLint runs the full suite over this repository: the tree
// must stay clean, and every surviving //fmilint:ignore directive must
// be live (a stale one is itself a finding). This is the regression
// test that keeps the suppression inventory honest.
func TestRepoSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo type-check is slow")
	}
	var out bytes.Buffer
	if got := lint.Main(filepath.Join("..", ".."), &out, false); got != lint.ExitClean {
		t.Errorf("repo lint = exit %d, want clean:\n%s", got, out.String())
	}
}
