package lint

import (
	"go/ast"
	"go/types"
)

// SimTime keeps wall-clock time out of the simulation's timing model.
// The simulated-cluster and collective-schedule packages must express
// timing through the cluster's event hooks and the transport delay
// queue (Options.MsgDelay, the FIFO-preserving per-message latency):
// a direct time.Now/Sleep/After/NewTimer there couples the simulation
// to the host scheduler and silently skews the measured recovery and
// round-count figures. The trace, runtime, transport, and serve
// packages are allowlisted — they deliberately deal in wall-clock time
// (timeline timestamps, job timeouts, the delay queue's own
// implementation, and the job service's HTTP deadlines, coarse clock,
// and simulated per-iteration compute).
var SimTime = &Analyzer{
	Name: "simtime",
	Doc:  "no direct wall-clock calls in the simulated-cluster and schedule packages",
	Run:  runSimTime,
}

// simtimePkgs are the package names the restriction applies to;
// simtimeAllow documents the deliberate exemptions.
var (
	simtimePkgs  = map[string]bool{"cluster": true, "coll": true}
	simtimeAllow = map[string]bool{"trace": true, "runtime": true, "transport": true, "serve": true}

	forbiddenTimeFuncs = map[string]bool{
		"Now": true, "Sleep": true, "After": true, "Tick": true,
		"NewTimer": true, "NewTicker": true, "AfterFunc": true,
	}
)

func runSimTime(prog *Program, report Reporter) {
	for _, pkg := range prog.Packages {
		if !simtimePkgs[pkg.Name] || simtimeAllow[pkg.Name] {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj, ok := pkg.Info.Uses[sel.Sel]
				if !ok {
					return true
				}
				fn, ok := obj.(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
					return true
				}
				if forbiddenTimeFuncs[fn.Name()] {
					report(sel.Pos(), "direct time.%s in simulated package %q; route timing through the cluster's event hooks or the transport delay queue", fn.Name(), pkg.Name)
				}
				return true
			})
		}
	}
}
