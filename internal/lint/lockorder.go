package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"fmi/internal/lint/cfg"
)

// LockOrder hunts the deadlock lockheld cannot see: two mutexes each
// waiting on the other. It builds the whole-program lock acquisition
// graph — an edge A → B whenever lock B is taken while A is held —
// and reports every edge that sits on a cycle.
//
// Lock identities are type-qualified, not instance-qualified: every
// Job's mu is one node "runtime.Job.mu" (field-qualified for struct
// fields, package-qualified for package-level mutexes; RLock and Lock
// share the identity). Held sets come from the same CFG dataflow
// lockheld uses, so a lock released on one branch is not "held" past
// the join unless some path keeps it. Edges are added two ways:
//
//   - directly, when one function locks B with A held;
//   - interprocedurally, when a function calls g with A held and g
//     (transitively, through static module-internal calls) acquires B.
//
// Indirect calls — interface methods, stored function values — are
// not resolved, and function-local mutexes stay out of the graph
// (each frame has its own instance). A self-edge A → A is reported
// too: nesting two instances of one type needs an instance order the
// analysis cannot check.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "the whole-program mutex acquisition graph must be cycle-free",
	Run:  runLockOrder,
}

type lockEdge struct {
	from, to string
}

type heldCall struct {
	held   []string
	callee *types.Func
	pos    token.Pos
}

type lockOrderCollector struct {
	prog       *Program
	modulePkgs map[*types.Package]bool
	edges      map[lockEdge]token.Pos        // first (smallest) position wins
	direct     map[*types.Func]map[string]bool // locks taken in the function itself
	calls      map[*types.Func]map[*types.Func]bool
	heldCalls  []heldCall
}

func (c *lockOrderCollector) addEdge(from, to string, pos token.Pos) {
	e := lockEdge{from: from, to: to}
	if old, ok := c.edges[e]; !ok || pos < old {
		c.edges[e] = pos
	}
}

func runLockOrder(prog *Program, report Reporter) {
	c := &lockOrderCollector{
		prog:       prog,
		modulePkgs: map[*types.Package]bool{},
		edges:      map[lockEdge]token.Pos{},
		direct:     map[*types.Func]map[string]bool{},
		calls:      map[*types.Func]map[*types.Func]bool{},
	}
	for _, pkg := range prog.Packages {
		c.modulePkgs[pkg.Types] = true
	}

	// Pass 1: per-function CFG dataflow. Function literals are their
	// own units — their locks and calls are not attributed to the
	// enclosing function (the closure usually runs on another
	// goroutine), but edges inside them are still collected.
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil {
						fn, _ := pkg.Info.Defs[n.Name].(*types.Func)
						c.analyze(pkg, fn, n.Body)
					}
				case *ast.FuncLit:
					c.analyze(pkg, nil, n.Body)
				}
				return true
			})
		}
	}

	// Pass 2: close acquires(f) = direct(f) ∪ acquires(callees) over
	// the static call graph, then materialise interprocedural edges.
	acquires := map[*types.Func]map[string]bool{}
	for fn, locks := range c.direct {
		set := map[string]bool{}
		for l := range locks {
			set[l] = true
		}
		acquires[fn] = set
	}
	for changed := true; changed; {
		changed = false
		for fn, callees := range c.calls {
			dst := acquires[fn]
			if dst == nil {
				dst = map[string]bool{}
				acquires[fn] = dst
			}
			for callee := range callees {
				for l := range acquires[callee] {
					if !dst[l] {
						dst[l] = true
						changed = true
					}
				}
			}
		}
	}
	for _, hc := range c.heldCalls {
		for _, h := range hc.held {
			for l := range acquires[hc.callee] {
				c.addEdge(h, l, hc.pos)
			}
		}
	}

	// Pass 3: strongly connected components; every edge inside an SCC
	// (and every self-edge) is part of some cycle.
	reportCycles(c.edges, report)
}

// analyze runs the held-set dataflow over one body and collects
// direct edges, direct acquisitions, and call sites.
func (c *lockOrderCollector) analyze(pkg *Package, fn *types.Func, body *ast.BlockStmt) {
	g := cfg.New(body)
	an := &orderAnalysis{pkg: pkg}
	in := cfg.Forward(g, an)
	an.collect = c
	an.fn = fn
	cfg.EachReachable(g, an, in, func(cfg.Node, cfg.Fact) {})
}

// orderFact maps lock identity -> held on some path.
type orderFact map[string]bool

type orderAnalysis struct {
	pkg     *Package
	collect *lockOrderCollector // nil during the fixpoint pass
	fn      *types.Func         // nil for function literals
}

func (oa *orderAnalysis) Entry() cfg.Fact { return orderFact{} }

func (oa *orderAnalysis) Copy(f cfg.Fact) cfg.Fact {
	n := orderFact{}
	for k, v := range f.(orderFact) {
		n[k] = v
	}
	return n
}

func (oa *orderAnalysis) Join(dst, src cfg.Fact) bool {
	d, s := dst.(orderFact), src.(orderFact)
	changed := false
	for k, v := range s {
		if v && !d[k] {
			d[k] = true
			changed = true
		}
	}
	return changed
}

func heldIdentities(f orderFact) []string {
	var out []string
	for k, v := range f {
		if v {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

func (oa *orderAnalysis) Transfer(n cfg.Node, f cfg.Fact) cfg.Fact {
	of := f.(orderFact)
	switch st := n.Ast.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, method, ok := oa.mutexIdentity(call); ok {
				switch method {
				case "Lock", "RLock":
					if oa.collect != nil {
						oa.noteAcquire(id, of, call.Pos())
					}
					of[id] = true
				case "Unlock", "RUnlock":
					of[id] = false
				}
				return of
			}
		}
		oa.scanCalls(st.X, of)
	case *ast.DeferStmt:
		if _, _, ok := oa.mutexIdentity(st.Call); ok {
			// A deferred unlock runs at function exit, so the lock
			// stays held for the rest of the body — exactly what the
			// ordering analysis must see at later acquisitions.
			// (lockheld instead treats the defer as the release
			// point; its question is path coverage, not ordering.)
			return of
		}
		oa.scanCalls(st.Call, of)
	case *ast.GoStmt:
		// The spawned call runs on its own goroutine with an empty
		// held set — it does not acquire "while" the spawner holds
		// anything. Only the call's operands evaluate synchronously.
		oa.scanCalls(st.Call.Fun, of)
		for _, arg := range st.Call.Args {
			oa.scanCalls(arg, of)
		}
	case *ast.RangeStmt:
		oa.scanCalls(st.X, of)
	case *ast.SelectStmt:
		// Clause bodies and comm operations are their own nodes.
	default:
		oa.scanCalls(n.Ast, of)
	}
	return of
}

// noteAcquire records a Lock/RLock during the collect pass: the
// function's direct acquisition, plus a direct edge from every lock
// already held.
func (oa *orderAnalysis) noteAcquire(id string, of orderFact, pos token.Pos) {
	if oa.fn != nil {
		set := oa.collect.direct[oa.fn]
		if set == nil {
			set = map[string]bool{}
			oa.collect.direct[oa.fn] = set
		}
		set[id] = true
	}
	for _, h := range heldIdentities(of) {
		oa.collect.addEdge(h, id, pos)
	}
}

// scanCalls resolves static module-internal callees in the node's
// expressions (not descending into function literals, which are
// separate units) and records them for interprocedural propagation —
// with the current held set if any lock is held.
func (oa *orderAnalysis) scanCalls(n ast.Node, of orderFact) {
	if n == nil || oa.collect == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			callee := oa.staticCallee(x)
			if callee == nil {
				return true
			}
			if oa.fn != nil {
				set := oa.collect.calls[oa.fn]
				if set == nil {
					set = map[*types.Func]bool{}
					oa.collect.calls[oa.fn] = set
				}
				set[callee] = true
			}
			if held := heldIdentities(of); len(held) > 0 {
				oa.collect.heldCalls = append(oa.collect.heldCalls, heldCall{held: held, callee: callee, pos: x.Pos()})
			}
		}
		return true
	})
}

// staticCallee resolves a call to a module-internal named function or
// method, or nil (builtins, stdlib, interface methods, func values).
func (oa *orderAnalysis) staticCallee(call *ast.CallExpr) *types.Func {
	var fn *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = oa.pkg.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		if selection, found := oa.pkg.Info.Selections[fun]; found {
			if selection.Kind() != types.MethodVal {
				return nil
			}
			fn, _ = selection.Obj().(*types.Func)
			// Interface dispatch has no static body to chase.
			if fn != nil {
				if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
					if types.IsInterface(recv.Type()) {
						return nil
					}
				}
			}
		} else {
			fn, _ = oa.pkg.Info.Uses[fun.Sel].(*types.Func)
		}
	}
	if fn == nil || fn.Pkg() == nil || !oa.collect.modulePkgs[fn.Pkg()] {
		return nil
	}
	return fn
}

// mutexIdentity reports whether call is Lock/Unlock/RLock/RUnlock on
// a sync mutex and resolves the receiver to a type-qualified lock
// identity. Function-local mutexes return ok=false: each frame holds
// its own instance, so they cannot participate in cross-function
// ordering.
func (oa *orderAnalysis) mutexIdentity(call *ast.CallExpr) (id, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	selection, found := oa.pkg.Info.Selections[sel]
	if !found {
		return "", "", false
	}
	fn, isFn := selection.Obj().(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	ident, resolved := oa.lockIdentity(sel.X)
	if !resolved {
		return "", "", false
	}
	return ident, sel.Sel.Name, true
}

func (oa *orderAnalysis) lockIdentity(recv ast.Expr) (string, bool) {
	recv = ast.Unparen(recv)
	switch r := recv.(type) {
	case *ast.SelectorExpr:
		// x.mu: qualify by the owning type — every instance of the
		// type is one graph node.
		if selection, found := oa.pkg.Info.Selections[r]; found && selection.Kind() == types.FieldVal {
			t := selection.Recv()
			if ptr, isPtr := t.(*types.Pointer); isPtr {
				t = ptr.Elem()
			}
			if named, isNamed := t.(*types.Named); isNamed {
				obj := named.Obj()
				pkgName := "_"
				if obj.Pkg() != nil {
					pkgName = obj.Pkg().Name()
				}
				return pkgName + "." + obj.Name() + "." + r.Sel.Name, true
			}
			return "", false
		}
		// pkgname.Mu: a package-level mutex referenced across packages.
		if obj, found := oa.pkg.Info.Uses[r.Sel]; found {
			if v, isVar := obj.(*types.Var); isVar && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Name() + "." + v.Name(), true
			}
		}
	case *ast.Ident:
		if obj, found := oa.pkg.Info.Uses[r]; found {
			if v, isVar := obj.(*types.Var); isVar && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Name() + "." + v.Name(), true
			}
		}
		// t.Lock() via an embedded sync.Mutex: qualify by t's type.
		if tv, found := oa.pkg.Info.Types[r]; found {
			t := tv.Type
			if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
				t = ptr.Elem()
			}
			if named, isNamed := t.(*types.Named); isNamed && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() != "sync" {
				return named.Obj().Pkg().Name() + "." + named.Obj().Name() + ".Mutex", true
			}
		}
	}
	return "", false
}

// reportCycles finds strongly connected components of the acquisition
// graph and reports every edge inside one (self-edges included).
func reportCycles(edges map[lockEdge]token.Pos, report Reporter) {
	succs := map[string][]string{}
	var nodes []string
	seen := map[string]bool{}
	addNode := func(n string) {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	for e := range edges {
		addNode(e.from)
		addNode(e.to)
		succs[e.from] = append(succs[e.from], e.to)
	}
	sort.Strings(nodes)
	for _, s := range succs {
		sort.Strings(s)
	}

	// Tarjan's SCC, iterative enough for lint-sized graphs.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	counter := 0
	sccOf := map[string]int{}
	sccCount := 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succs[v] {
			if _, visited := index[w]; !visited {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				sccOf[w] = sccCount
				if w == v {
					break
				}
			}
			sccCount++
		}
	}
	for _, v := range nodes {
		if _, visited := index[v]; !visited {
			strongconnect(v)
		}
	}

	members := map[int][]string{}
	for v, id := range sccOf {
		members[id] = append(members[id], v)
	}
	for e, pos := range edges {
		cyclic := false
		if e.from == e.to {
			cyclic = true
		} else if sccOf[e.from] == sccOf[e.to] {
			cyclic = true
		}
		if !cyclic {
			continue
		}
		ms := append([]string(nil), members[sccOf[e.from]]...)
		sort.Strings(ms)
		cycle := strings.Join(ms, " -> ") + " -> " + ms[0]
		report(pos, "lock order inversion: %s acquired while %s is held — cycle %s can deadlock against a thread locking in the opposite order", e.to, e.from, cycle)
	}
}
