package transport

import (
	"testing"
	"time"
)

// drain waits for the demux goroutine to process everything a.Send put
// in flight (chan transport delivery is asynchronous).
func settle() { time.Sleep(10 * time.Millisecond) }

func TestDedupSuppressesDuplicateSeqs(t *testing.T) {
	a, b, mb := newMatcherPair(t)
	mb.EnableDedup(4)
	a.Send(b.Addr(), Msg{Src: 1, Tag: 1, Seq: 1, Data: []byte("one")})
	a.Send(b.Addr(), Msg{Src: 1, Tag: 1, Seq: 2, Data: []byte("two")})
	// A replaying sender re-sends seq 1 and 2; both must be suppressed.
	a.Send(b.Addr(), Msg{Src: 1, Tag: 1, Seq: 1, Flags: FlagReplay, Data: []byte("one")})
	a.Send(b.Addr(), Msg{Src: 1, Tag: 1, Seq: 2, Flags: FlagReplay, Data: []byte("two")})
	a.Send(b.Addr(), Msg{Src: 1, Tag: 1, Seq: 3, Data: []byte("three")})
	for _, want := range []string{"one", "two", "three"} {
		msg, err := mb.Recv(0, 1, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if string(msg.Data) != want {
			t.Fatalf("got %q, want %q", msg.Data, want)
		}
	}
	settle()
	if _, ok := mb.TryRecv(0, 1, 1); ok {
		t.Fatal("duplicate leaked through to the unexpected queue")
	}
	_, _, dup := mb.Stats()
	if dup != 2 {
		t.Fatalf("dupSuppressed = %d, want 2", dup)
	}
}

func TestDedupUnsequencedExempt(t *testing.T) {
	a, b, mb := newMatcherPair(t)
	mb.EnableDedup(4)
	// Seq 0 control traffic is never deduplicated, even repeated.
	a.Send(b.Addr(), Msg{Src: 2, Tag: 7, Data: []byte("c1")})
	a.Send(b.Addr(), Msg{Src: 2, Tag: 7, Data: []byte("c2")})
	for _, want := range []string{"c1", "c2"} {
		msg, err := mb.Recv(0, 2, 7, nil)
		if err != nil || string(msg.Data) != want {
			t.Fatalf("got %q, %v; want %q", msg.Data, err, want)
		}
	}
}

func TestDedupSeedSeenAndWatermarks(t *testing.T) {
	a, b, mb := newMatcherPair(t)
	mb.EnableDedup(4)
	mb.SeedSeen([]uint64{0, 5, 0, 0})
	// Everything at or below the seeded watermark is a duplicate.
	a.Send(b.Addr(), Msg{Src: 1, Tag: 1, Seq: 4, Data: []byte("old")})
	a.Send(b.Addr(), Msg{Src: 1, Tag: 1, Seq: 5, Data: []byte("old")})
	a.Send(b.Addr(), Msg{Src: 1, Tag: 1, Seq: 6, Data: []byte("new")})
	msg, err := mb.Recv(0, 1, 1, nil)
	if err != nil || string(msg.Data) != "new" {
		t.Fatalf("got %q, %v", msg.Data, err)
	}
	seen := mb.SeenVector()
	if seen[1] != 6 {
		t.Fatalf("seen[1] = %d, want 6", seen[1])
	}
	// SeedSeen never moves a watermark backwards.
	mb.SeedSeen([]uint64{0, 2, 0, 0})
	if got := mb.SeenVector()[1]; got != 6 {
		t.Fatalf("watermark regressed to %d", got)
	}
}

func TestHarvestAndInjectCarryOver(t *testing.T) {
	a, b, mb := newMatcherPair(t)
	mb.EnableDedup(4)
	// One sequenced message accepted but unconsumed, one control message.
	a.Send(b.Addr(), Msg{Src: 3, Tag: 2, Seq: 1, Flags: FlagReplay, Data: []byte("pending")})
	a.Send(b.Addr(), Msg{Src: 3, Tag: -9, Data: []byte("ctl")})
	settle()
	seen, queued := mb.HarvestState()
	if seen[3] != 1 {
		t.Fatalf("harvested seen[3] = %d, want 1", seen[3])
	}
	if len(queued) != 1 || string(queued[0].Data) != "pending" {
		t.Fatalf("harvested queue = %+v, want only the sequenced message", queued)
	}
	if queued[0].Flags&FlagReplay != 0 {
		t.Fatal("replay flag not cleared on harvested message")
	}

	// A fresh matcher seeded with the harvest delivers the carried
	// message and still suppresses its duplicate.
	nw := NewChanNetwork(Options{})
	c, err := nw.NewEndpoint(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m2 := NewMatcher(c)
	defer m2.Close()
	m2.EnableDedup(4)
	m2.SeedSeen(seen)
	m2.Inject(queued)
	msg, ok := m2.TryRecv(0, 3, 2)
	if !ok || string(msg.Data) != "pending" {
		t.Fatalf("injected message not delivered: %+v %v", msg, ok)
	}
	m2.ingest(Msg{Src: 3, Tag: 2, Seq: 1, Data: []byte("dup")})
	if _, ok := m2.TryRecv(0, 3, 2); ok {
		t.Fatal("seeded watermark failed to suppress the duplicate")
	}
}

func TestDedupOutOfRangeSourceDropped(t *testing.T) {
	_, _, mb := newMatcherPair(t)
	mb.EnableDedup(2)
	mb.ingest(Msg{Src: 99, Tag: 1, Seq: 1, Data: []byte("bogus")})
	if _, ok := mb.TryRecv(0, 99, 1); ok {
		t.Fatal("sequenced message with out-of-range source accepted")
	}
}
