package transport

import (
	"encoding/binary"
	"fmt"

	"fmi/internal/bufpool"
	"fmi/internal/enc"
)

// Byte-slice frame codec shared by the two send-side coalescing paths
// (the chan overflow batch and the TCP writer's run batching) and the
// matcher's ingress unbatcher. A batch frame's payload is an enc
// batch whose parts are complete frames: the same u32 dataLen header
// the TCP wire uses, followed by the payload bytes. The batch frame's
// own header fields (src, tag, epoch, ...) are placeholders — every
// filter and match decision applies to the inner frames after
// unbatching, never to the container.

// encodeFrameHeader fills hdr from m's metadata (the wire header
// shared with tcp.go's writeFrame).
func encodeFrameHeader(hdr *[frameHeaderSize]byte, m *Msg) {
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(m.Data)))
	hdr[4] = m.Kind
	hdr[5] = m.Flags
	binary.LittleEndian.PutUint32(hdr[6:], uint32(m.Src))
	binary.LittleEndian.PutUint32(hdr[10:], uint32(m.Tag))
	binary.LittleEndian.PutUint32(hdr[14:], m.Ctx)
	binary.LittleEndian.PutUint32(hdr[18:], m.Epoch)
	binary.LittleEndian.PutUint64(hdr[22:], m.Seq)
	binary.LittleEndian.PutUint64(hdr[30:], m.View)
}

// batchFrameLen is m's encoded size as one batch part.
func batchFrameLen(m *Msg) int {
	return enc.BatchPartOverhead + frameHeaderSize + len(m.Data)
}

// appendBatchFrame appends m to a batch under construction as one
// length-prefixed part: u32 partLen | frame header | payload.
func appendBatchFrame(dst []byte, m *Msg) []byte {
	var hdr [frameHeaderSize]byte
	encodeFrameHeader(&hdr, m)
	dst = enc.AppendPartHeader(dst, frameHeaderSize+len(m.Data))
	dst = append(dst, hdr[:]...)
	return append(dst, m.Data...)
}

// decodeFrameBytes decodes one batch part back into a Msg, copying
// the payload into a buffer from pool (nil pool = plain make) so the
// frame outlives the batch buffer it aliased. Nested batches are
// rejected: the coalescers only ever batch user-level frames, so an
// inner KindBatch is corruption, not recursion.
func decodeFrameBytes(part []byte, pool *bufpool.Arena) (Msg, error) {
	if len(part) < frameHeaderSize {
		return Msg{}, fmt.Errorf("transport: batch part shorter than frame header (%d bytes)", len(part))
	}
	n := binary.LittleEndian.Uint32(part[0:])
	m := Msg{
		Kind:  part[4],
		Flags: part[5],
		Src:   int32(binary.LittleEndian.Uint32(part[6:])),
		Tag:   int32(binary.LittleEndian.Uint32(part[10:])),
		Ctx:   binary.LittleEndian.Uint32(part[14:]),
		Epoch: binary.LittleEndian.Uint32(part[18:]),
		Seq:   binary.LittleEndian.Uint64(part[22:]),
		View:  binary.LittleEndian.Uint64(part[30:]),
	}
	if m.Kind == KindBatch {
		return Msg{}, fmt.Errorf("transport: nested batch frame")
	}
	body := part[frameHeaderSize:]
	if uint64(n) != uint64(len(body)) {
		return Msg{}, fmt.Errorf("transport: batch part declares %d payload bytes, carries %d", n, len(body))
	}
	if n > 0 {
		cp := pool.Get(int(n))
		copy(cp, body)
		m.Data = cp
		m.pool = pool
	}
	return m, nil
}
