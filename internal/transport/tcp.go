package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCPNetwork is a Network over real TCP sockets on loopback, built on
// the standard net package. It exists to exercise the runtime over a
// genuine byte-stream transport (the paper's PMGR plane runs over
// TCP/IP) and to validate that nothing in the runtime depends on the
// in-process channel shortcut.
//
// Failure observation on TCP is the socket close itself, so
// DetectDelay/PropDelay are not simulated here; disconnects fire as
// soon as the OS reports them.
type TCPNetwork struct {
	opts Options
}

// NewTCPNetwork creates a TCP network with the given options.
func NewTCPNetwork(opts Options) *TCPNetwork { return &TCPNetwork{opts: opts} }

// Handshake bytes distinguishing the two planes multiplexed over the
// same listener.
const (
	planeMsg  = 'M'
	planeConn = 'C'
)

// NewEndpoint opens a loopback listener for the endpoint.
func (n *TCPNetwork) NewEndpoint(die <-chan struct{}) (Endpoint, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	ep := &tcpEndpoint{
		addr:     Addr(l.Addr().String()),
		listener: l,
		inbox:    make(chan Msg, n.opts.inboxCap()),
		accept:   make(chan Conn, 64),
		dead:     make(chan struct{}),
		msgConns: make(map[Addr]*msgConn),
	}
	go ep.acceptLoop()
	if die != nil {
		go func() {
			select {
			case <-die:
				ep.Close()
			case <-ep.dead:
			}
		}()
	}
	return ep, nil
}

type tcpEndpoint struct {
	addr     Addr
	listener net.Listener
	inbox    chan Msg
	accept   chan Conn

	mu       sync.Mutex
	msgConns map[Addr]*msgConn
	conns    []*tcpConn
	deadOnce sync.Once
	dead     chan struct{}
	readers  sync.WaitGroup
}

type msgConn struct {
	mu sync.Mutex
	c  net.Conn
	w  *bufio.Writer
}

func (ep *tcpEndpoint) Addr() Addr          { return ep.addr }
func (ep *tcpEndpoint) Recv() <-chan Msg    { return ep.inbox }
func (ep *tcpEndpoint) Accept() <-chan Conn { return ep.accept }

func (ep *tcpEndpoint) isDead() bool {
	select {
	case <-ep.dead:
		return true
	default:
		return false
	}
}

func (ep *tcpEndpoint) acceptLoop() {
	for {
		c, err := ep.listener.Accept()
		if err != nil {
			return // listener closed
		}
		ep.readers.Add(1)
		go ep.handleIncoming(c)
	}
}

func (ep *tcpEndpoint) handleIncoming(c net.Conn) {
	defer ep.readers.Done()
	var plane [1]byte
	if _, err := io.ReadFull(c, plane[:]); err != nil {
		c.Close()
		return
	}
	peer, err := readString(c)
	if err != nil {
		c.Close()
		return
	}
	switch plane[0] {
	case planeMsg:
		ep.msgReadLoop(c)
	case planeConn:
		tc := newTCPConn(ep.addr, Addr(peer), c)
		ep.mu.Lock()
		dead := ep.isDead()
		if !dead {
			ep.conns = append(ep.conns, tc)
		}
		ep.mu.Unlock()
		if dead {
			c.Close()
			return
		}
		select {
		case ep.accept <- tc:
		case <-ep.dead:
			c.Close()
		}
	default:
		c.Close()
	}
}

func (ep *tcpEndpoint) msgReadLoop(c net.Conn) {
	defer c.Close()
	r := bufio.NewReader(c)
	for {
		m, err := readFrame(r)
		if err != nil {
			return
		}
		select {
		case ep.inbox <- m:
		case <-ep.dead:
			return
		}
	}
}

// Send writes m to the peer's message plane, dialing lazily. Errors
// from dead peers cause a silent drop, matching PSM semantics.
func (ep *tcpEndpoint) Send(to Addr, m Msg) error {
	if ep.isDead() {
		return ErrClosed
	}
	mc, err := ep.getMsgConn(to)
	if err != nil {
		return nil // unreachable: drop
	}
	mc.mu.Lock()
	err = writeFrame(mc.w, m)
	if err == nil {
		err = mc.w.Flush()
	}
	mc.mu.Unlock()
	if err != nil {
		ep.dropMsgConn(to, mc)
	}
	return nil
}

func (ep *tcpEndpoint) getMsgConn(to Addr) (*msgConn, error) {
	ep.mu.Lock()
	if mc, ok := ep.msgConns[to]; ok {
		ep.mu.Unlock()
		return mc, nil
	}
	ep.mu.Unlock()

	c, err := net.Dial("tcp", string(to))
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriter(c)
	if err := writeHandshake(w, planeMsg, string(ep.addr)); err != nil {
		c.Close()
		return nil, err
	}
	mc := &msgConn{c: c, w: w}

	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.isDead() {
		c.Close()
		return nil, ErrClosed
	}
	if prev, ok := ep.msgConns[to]; ok { // lost a race; reuse winner
		c.Close()
		return prev, nil
	}
	ep.msgConns[to] = mc
	return mc, nil
}

func (ep *tcpEndpoint) dropMsgConn(to Addr, mc *msgConn) {
	ep.mu.Lock()
	if ep.msgConns[to] == mc {
		delete(ep.msgConns, to)
	}
	ep.mu.Unlock()
	mc.c.Close()
}

// Connect dials a monitored connection to peer.
func (ep *tcpEndpoint) Connect(peer Addr) (Conn, error) {
	if ep.isDead() {
		return nil, ErrClosed
	}
	c, err := net.Dial("tcp", string(peer))
	if err != nil {
		return nil, ErrUnreachable
	}
	w := bufio.NewWriter(c)
	if err := writeHandshake(w, planeConn, string(ep.addr)); err != nil {
		c.Close()
		return nil, ErrUnreachable
	}
	tc := newTCPConn(ep.addr, peer, c)
	ep.mu.Lock()
	if ep.isDead() {
		ep.mu.Unlock()
		c.Close()
		return nil, ErrClosed
	}
	ep.conns = append(ep.conns, tc)
	ep.mu.Unlock()
	return tc, nil
}

// Close shuts the endpoint down: listener and all connections close,
// readers drain, and the inbox channel is closed.
func (ep *tcpEndpoint) Close() error {
	ep.deadOnce.Do(func() {
		ep.mu.Lock()
		close(ep.dead)
		conns := ep.conns
		ep.conns = nil
		msgConns := ep.msgConns
		ep.msgConns = map[Addr]*msgConn{}
		ep.mu.Unlock()

		ep.listener.Close()
		for _, mc := range msgConns {
			mc.c.Close()
		}
		for _, tc := range conns {
			tc.Close()
		}
		go func() {
			ep.readers.Wait()
			close(ep.inbox)
		}()
	})
	return nil
}

// tcpConn is a monitored connection over a TCP socket. A reader
// goroutine watches for EOF/reset and fires Closed.
type tcpConn struct {
	local, remote Addr
	c             net.Conn
	once          sync.Once
	closed        chan struct{}
}

func newTCPConn(local, remote Addr, c net.Conn) *tcpConn {
	tc := &tcpConn{local: local, remote: remote, c: c, closed: make(chan struct{})}
	go func() {
		var buf [1]byte
		for {
			if _, err := c.Read(buf[:]); err != nil {
				tc.fire()
				return
			}
		}
	}()
	return tc
}

func (c *tcpConn) Local() Addr             { return c.local }
func (c *tcpConn) Remote() Addr            { return c.remote }
func (c *tcpConn) Closed() <-chan struct{} { return c.closed }

func (c *tcpConn) Close() error {
	c.fire()
	return c.c.Close()
}

func (c *tcpConn) fire() {
	c.once.Do(func() { close(c.closed) })
}

// Frame format: u32 dataLen | u8 kind | u8 flags | i32 src | i32 tag |
// u32 ctx | u32 epoch | u64 seq | data. All little-endian.
const frameHeaderSize = 4 + 1 + 1 + 4 + 4 + 4 + 4 + 8

func writeFrame(w *bufio.Writer, m Msg) error {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(m.Data)))
	hdr[4] = m.Kind
	hdr[5] = m.Flags
	binary.LittleEndian.PutUint32(hdr[6:], uint32(m.Src))
	binary.LittleEndian.PutUint32(hdr[10:], uint32(m.Tag))
	binary.LittleEndian.PutUint32(hdr[14:], m.Ctx)
	binary.LittleEndian.PutUint32(hdr[18:], m.Epoch)
	binary.LittleEndian.PutUint64(hdr[22:], m.Seq)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(m.Data)
	return err
}

func readFrame(r *bufio.Reader) (Msg, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Msg{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:])
	m := Msg{
		Kind:  hdr[4],
		Flags: hdr[5],
		Src:   int32(binary.LittleEndian.Uint32(hdr[6:])),
		Tag:   int32(binary.LittleEndian.Uint32(hdr[10:])),
		Ctx:   binary.LittleEndian.Uint32(hdr[14:]),
		Epoch: binary.LittleEndian.Uint32(hdr[18:]),
		Seq:   binary.LittleEndian.Uint64(hdr[22:]),
	}
	if n > 0 {
		m.Data = make([]byte, n)
		if _, err := io.ReadFull(r, m.Data); err != nil {
			return Msg{}, err
		}
	}
	return m, nil
}

func writeHandshake(w *bufio.Writer, plane byte, self string) error {
	if err := w.WriteByte(plane); err != nil {
		return err
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(self)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	if _, err := w.WriteString(self); err != nil {
		return err
	}
	return w.Flush()
}

func readString(r io.Reader) (string, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return "", err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n > 1<<16 {
		return "", fmt.Errorf("transport: handshake string too long (%d)", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
