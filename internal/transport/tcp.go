package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fmi/internal/bufpool"
	"fmi/internal/enc"
)

// TCPNetwork is a Network over real TCP sockets on loopback, built on
// the standard net package. It exists to exercise the runtime over a
// genuine byte-stream transport (the paper's PMGR plane runs over
// TCP/IP) and to validate that nothing in the runtime depends on the
// in-process channel shortcut.
//
// Failure observation on TCP is the socket close itself, so
// DetectDelay/PropDelay are not simulated here; disconnects fire as
// soon as the OS reports them.
type TCPNetwork struct {
	opts Options
}

// NewTCPNetwork creates a TCP network with the given options.
func NewTCPNetwork(opts Options) *TCPNetwork { return &TCPNetwork{opts: opts} }

// Handshake bytes distinguishing the two planes multiplexed over the
// same listener.
const (
	planeMsg  = 'M'
	planeConn = 'C'
)

// NewEndpoint opens a loopback listener for the endpoint.
func (n *TCPNetwork) NewEndpoint(die <-chan struct{}) (Endpoint, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	ep := &tcpEndpoint{
		opts:     n.opts,
		addr:     Addr(l.Addr().String()),
		listener: l,
		inbox:    make(chan Msg, n.opts.inboxCap()),
		accept:   make(chan Conn, 64),
		dead:     make(chan struct{}),
		msgConns: make(map[Addr]*msgConn),
	}
	go ep.acceptLoop()
	if die != nil {
		go func() {
			select {
			case <-die:
				ep.Close()
			case <-ep.dead:
			}
		}()
	}
	return ep, nil
}

type tcpEndpoint struct {
	opts     Options
	addr     Addr
	listener net.Listener
	inbox    chan Msg
	accept   chan Conn

	mu       sync.Mutex
	msgConns map[Addr]*msgConn
	conns    []*tcpConn
	deadOnce sync.Once
	dead     chan struct{}
	readers  sync.WaitGroup
}

// msgConnQCap bounds the per-connection outbound queue; a full queue
// applies backpressure to senders, mirroring a full NIC send queue.
const msgConnQCap = 256

// msgConn is the message plane to one peer: a socket plus a dedicated
// writer goroutine that coalesces queued frames into one buffered
// flush (one syscall) instead of a write+flush per Send. hdr is the
// connection-scoped header scratch, touched only by the writer
// goroutine, so frame encoding allocates nothing.
type msgConn struct {
	c net.Conn
	w *bufio.Writer

	q        chan Msg
	pending  atomic.Int64 // frames enqueued but not yet flushed to the socket
	deadOnce sync.Once
	dead     chan struct{}

	// Writer-goroutine-only scratch: the frame header, the burst
	// gathered from q, and the batch encode buffer (all reused, so
	// steady-state batching allocates nothing).
	hdr     [frameHeaderSize]byte
	burst   []Msg
	scratch []byte
}

func (mc *msgConn) kill() {
	mc.deadOnce.Do(func() { close(mc.dead) })
}

// drainQ recycles frames stranded in the queue after the connection
// died (they are lost on the wire; PSM semantics drop them silently).
func (mc *msgConn) drainQ() {
	for {
		select {
		case m := <-mc.q:
			m.Release()
			mc.pending.Add(-1)
		default:
			return
		}
	}
}

func (ep *tcpEndpoint) Addr() Addr          { return ep.addr }
func (ep *tcpEndpoint) Recv() <-chan Msg    { return ep.inbox }
func (ep *tcpEndpoint) Accept() <-chan Conn { return ep.accept }

func (ep *tcpEndpoint) isDead() bool {
	select {
	case <-ep.dead:
		return true
	default:
		return false
	}
}

func (ep *tcpEndpoint) acceptLoop() {
	for {
		c, err := ep.listener.Accept()
		if err != nil {
			return // listener closed
		}
		ep.readers.Add(1)
		go ep.handleIncoming(c)
	}
}

func (ep *tcpEndpoint) handleIncoming(c net.Conn) {
	defer ep.readers.Done()
	var plane [1]byte
	if _, err := io.ReadFull(c, plane[:]); err != nil {
		c.Close()
		return
	}
	peer, err := readString(c)
	if err != nil {
		c.Close()
		return
	}
	switch plane[0] {
	case planeMsg:
		ep.msgReadLoop(c)
	case planeConn:
		tc := newTCPConn(ep.addr, Addr(peer), c)
		ep.mu.Lock()
		dead := ep.isDead()
		if !dead {
			ep.conns = append(ep.conns, tc)
		}
		ep.mu.Unlock()
		if dead {
			c.Close()
			return
		}
		select {
		case ep.accept <- tc:
		case <-ep.dead:
			c.Close()
		}
	default:
		c.Close()
	}
}

func (ep *tcpEndpoint) msgReadLoop(c net.Conn) {
	defer c.Close()
	r := bufio.NewReader(c)
	for {
		m, err := readFrame(r, ep.opts.Pool)
		if err != nil {
			return
		}
		if m.Kind == KindBatch {
			// Unbatch at ingress: Recv()'s contract is a stream of the
			// frames that were sent, never the coalescing containers.
			if !ep.inboxBatch(m) {
				return
			}
			continue
		}
		select {
		case ep.inbox <- m:
		case <-ep.dead:
			m.Release()
			return
		}
	}
}

// inboxBatch unpacks a coalesced frame and delivers the inner frames
// to the inbox in order. A malformed batch is dropped whole (the
// sender only ever emits well-formed ones; corruption means the
// stream is toast anyway). Returns false when the endpoint died.
func (ep *tcpEndpoint) inboxBatch(b Msg) bool {
	parts, err := enc.UnpackBatch(b.Data)
	if err != nil {
		b.Release()
		return true
	}
	for _, p := range parts {
		m, err := decodeFrameBytes(p, ep.opts.Pool)
		if err != nil {
			continue
		}
		select {
		case ep.inbox <- m:
		case <-ep.dead:
			m.Release()
			b.Release()
			return false
		}
	}
	b.Release()
	return true
}

// Send queues m for the peer's message plane, dialing lazily. The
// connection's writer goroutine encodes and flushes asynchronously,
// coalescing bursts of frames into a single flush; write errors from
// dead peers tear the connection down silently, matching PSM
// semantics. The payload is copied into a pooled buffer at enqueue
// (eager-send: the caller may reuse its buffer once Send returns).
func (ep *tcpEndpoint) Send(to Addr, m Msg) error {
	if ep.isDead() {
		return ErrClosed
	}
	mc, err := ep.getMsgConn(to)
	if err != nil {
		return nil // unreachable: drop
	}
	if len(m.Data) > 0 {
		cp := ep.opts.Pool.Get(len(m.Data))
		copy(cp, m.Data)
		m.Data = cp
		m.pool = ep.opts.Pool
	}
	mc.pending.Add(1)
	select {
	case mc.q <- m:
		return nil
	case <-mc.dead:
		m.Release() // connection died under us: drop
		mc.pending.Add(-1)
		return nil
	case <-ep.dead:
		m.Release()
		mc.pending.Add(-1)
		return ErrClosed
	}
}

// Batching bounds for the TCP writer: only frames this small join a
// batch, and a single batch frame carries at most this many.
const (
	tcpBatchMaxEach = 4 << 10
	tcpBatchMaxRun  = 64
)

// writeLoop is the connection's writer goroutine: it gathers whatever
// burst is sitting in the queue, encodes it through the shared
// bufio.Writer, and flushes once per burst — so a burst of k sends
// costs one flush, while a lone send still hits the wire immediately
// (no added latency, which also keeps collectives deadlock-free: a
// frame a peer is blocked on is never held back waiting for more
// traffic). Within a burst, consecutive runs of small frames are
// coalesced into single KindBatch frames, cutting per-frame header
// and receive-path costs on top of the shared flush.
func (ep *tcpEndpoint) writeLoop(to Addr, mc *msgConn) {
	fail := func() {
		ep.dropMsgConn(to, mc)
		mc.drainQ()
	}
	for {
		select {
		case m := <-mc.q:
			mc.burst = append(mc.burst[:0], m)
		gather:
			for {
				select {
				case m = <-mc.q:
					mc.burst = append(mc.burst, m)
				default:
					break gather
				}
			}
			n := int64(len(mc.burst))
			err := mc.writeBurst(ep.opts.DisableCoalesce)
			if err == nil {
				err = mc.w.Flush()
			}
			mc.pending.Add(-n)
			if err != nil {
				fail()
				return
			}
		case <-mc.dead:
			mc.drainQ()
			return
		case <-ep.dead:
			mc.drainQ()
			return
		}
	}
}

// writeBurst encodes the gathered burst in order: runs of 2+ small
// frames become one KindBatch frame, everything else is written
// as-is. Every burst frame is released exactly once, whether written
// or abandoned on a write error.
func (mc *msgConn) writeBurst(disableBatch bool) error {
	var err error
	i := 0
	for i < len(mc.burst) && err == nil {
		j := i
		if !disableBatch {
			for j < len(mc.burst) && j-i < tcpBatchMaxRun && len(mc.burst[j].Data) <= tcpBatchMaxEach {
				j++
			}
		}
		if j-i >= 2 {
			err = mc.writeRun(mc.burst[i:j])
			i = j
		} else {
			err = mc.writeOne(mc.burst[i])
			i++
		}
	}
	for ; i < len(mc.burst); i++ {
		mc.burst[i].Release() // write failed: drop the rest (PSM semantics)
	}
	for i := range mc.burst {
		mc.burst[i] = Msg{}
	}
	mc.burst = mc.burst[:0]
	return err
}

// writeRun coalesces run (all small frames) into one batch frame.
func (mc *msgConn) writeRun(run []Msg) error {
	total := enc.BatchHeaderLen
	for i := range run {
		total += batchFrameLen(&run[i])
	}
	if cap(mc.scratch) < total {
		mc.scratch = make([]byte, 0, total)
	}
	mc.scratch = enc.AppendBatchHeader(mc.scratch[:0], len(run))
	for i := range run {
		mc.scratch = appendBatchFrame(mc.scratch, &run[i])
		run[i].Release()
	}
	return writeFrame(mc.w, &mc.hdr, Msg{Kind: KindBatch, Data: mc.scratch})
}

// writeOne encodes m into the buffered writer and recycles the pooled
// payload copy.
func (mc *msgConn) writeOne(m Msg) error {
	err := writeFrame(mc.w, &mc.hdr, m)
	m.Release()
	return err
}

// FlushBarrier blocks until every queued outbound frame has been
// flushed to its socket (or the endpoint/conn died), bounded by a
// short timeout so a wedged peer cannot stall an epoch fence. The
// matcher calls this at AdvanceEpoch: an epoch fence is an explicit
// flush boundary for the batched writers.
func (ep *tcpEndpoint) FlushBarrier() {
	ep.mu.Lock()
	conns := make([]*msgConn, 0, len(ep.msgConns))
	for _, mc := range ep.msgConns {
		conns = append(conns, mc)
	}
	ep.mu.Unlock()
	deadline := time.Now().Add(100 * time.Millisecond)
	for _, mc := range conns {
		for mc.pending.Load() > 0 && time.Now().Before(deadline) {
			time.Sleep(50 * time.Microsecond)
		}
	}
}

func (ep *tcpEndpoint) getMsgConn(to Addr) (*msgConn, error) {
	ep.mu.Lock()
	if mc, ok := ep.msgConns[to]; ok {
		ep.mu.Unlock()
		return mc, nil
	}
	ep.mu.Unlock()

	c, err := net.Dial("tcp", string(to))
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriter(c)
	if err := writeHandshake(w, planeMsg, string(ep.addr)); err != nil {
		c.Close()
		return nil, err
	}
	mc := &msgConn{c: c, w: w, q: make(chan Msg, msgConnQCap), dead: make(chan struct{})}

	ep.mu.Lock()
	if ep.isDead() {
		ep.mu.Unlock()
		c.Close()
		return nil, ErrClosed
	}
	if prev, ok := ep.msgConns[to]; ok { // lost a race; reuse winner
		ep.mu.Unlock()
		c.Close()
		return prev, nil
	}
	ep.msgConns[to] = mc
	ep.mu.Unlock()
	go ep.writeLoop(to, mc)
	return mc, nil
}

func (ep *tcpEndpoint) dropMsgConn(to Addr, mc *msgConn) {
	ep.mu.Lock()
	if ep.msgConns[to] == mc {
		delete(ep.msgConns, to)
	}
	ep.mu.Unlock()
	mc.kill()
	mc.c.Close()
}

// Connect dials a monitored connection to peer.
func (ep *tcpEndpoint) Connect(peer Addr) (Conn, error) {
	if ep.isDead() {
		return nil, ErrClosed
	}
	c, err := net.Dial("tcp", string(peer))
	if err != nil {
		return nil, ErrUnreachable
	}
	w := bufio.NewWriter(c)
	if err := writeHandshake(w, planeConn, string(ep.addr)); err != nil {
		c.Close()
		return nil, ErrUnreachable
	}
	tc := newTCPConn(ep.addr, peer, c)
	ep.mu.Lock()
	if ep.isDead() {
		ep.mu.Unlock()
		c.Close()
		return nil, ErrClosed
	}
	ep.conns = append(ep.conns, tc)
	ep.mu.Unlock()
	return tc, nil
}

// Close shuts the endpoint down: listener and all connections close,
// readers drain, and the inbox channel is closed.
func (ep *tcpEndpoint) Close() error {
	ep.deadOnce.Do(func() {
		ep.mu.Lock()
		close(ep.dead)
		conns := ep.conns
		ep.conns = nil
		msgConns := ep.msgConns
		ep.msgConns = map[Addr]*msgConn{}
		ep.mu.Unlock()

		ep.listener.Close()
		for _, mc := range msgConns {
			mc.kill()
			mc.c.Close()
		}
		for _, tc := range conns {
			tc.Close()
		}
		go func() {
			ep.readers.Wait()
			close(ep.inbox)
		}()
	})
	return nil
}

// tcpConn is a monitored connection over a TCP socket. A reader
// goroutine watches for EOF/reset and fires Closed.
type tcpConn struct {
	local, remote Addr
	c             net.Conn
	once          sync.Once
	closed        chan struct{}
}

func newTCPConn(local, remote Addr, c net.Conn) *tcpConn {
	tc := &tcpConn{local: local, remote: remote, c: c, closed: make(chan struct{})}
	go func() {
		var buf [1]byte
		for {
			if _, err := c.Read(buf[:]); err != nil {
				tc.fire()
				return
			}
		}
	}()
	return tc
}

func (c *tcpConn) Local() Addr             { return c.local }
func (c *tcpConn) Remote() Addr            { return c.remote }
func (c *tcpConn) Closed() <-chan struct{} { return c.closed }

func (c *tcpConn) Close() error {
	c.fire()
	return c.c.Close()
}

func (c *tcpConn) fire() {
	c.once.Do(func() { close(c.closed) })
}

// Frame format: u32 dataLen | u8 kind | u8 flags | i32 src | i32 tag |
// u32 ctx | u32 epoch | u64 seq | u64 view | data. All little-endian.
const frameHeaderSize = 4 + 1 + 1 + 4 + 4 + 4 + 4 + 8 + 8

// writeFrame encodes m through hdr, the caller-owned header scratch
// (connection-scoped on the send path — no per-frame allocation).
func writeFrame(w *bufio.Writer, hdr *[frameHeaderSize]byte, m Msg) error {
	encodeFrameHeader(hdr, &m)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(m.Data)
	return err
}

// readFrame decodes one frame, drawing the payload buffer from pool
// (nil pool = plain make). The returned Msg carries the pool so the
// consumer can recycle the buffer with Release.
func readFrame(r *bufio.Reader, pool *bufpool.Arena) (Msg, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Msg{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:])
	m := Msg{
		Kind:  hdr[4],
		Flags: hdr[5],
		Src:   int32(binary.LittleEndian.Uint32(hdr[6:])),
		Tag:   int32(binary.LittleEndian.Uint32(hdr[10:])),
		Ctx:   binary.LittleEndian.Uint32(hdr[14:]),
		Epoch: binary.LittleEndian.Uint32(hdr[18:]),
		Seq:   binary.LittleEndian.Uint64(hdr[22:]),
		View:  binary.LittleEndian.Uint64(hdr[30:]),
	}
	if n > 0 {
		m.Data = pool.Get(int(n))
		m.pool = pool
		if _, err := io.ReadFull(r, m.Data); err != nil {
			m.Release()
			return Msg{}, err
		}
	}
	return m, nil
}

func writeHandshake(w *bufio.Writer, plane byte, self string) error {
	if err := w.WriteByte(plane); err != nil {
		return err
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(self)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	if _, err := w.WriteString(self); err != nil {
		return err
	}
	return w.Flush()
}

func readString(r io.Reader) (string, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return "", err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n > 1<<16 {
		return "", fmt.Errorf("transport: handshake string too long (%d)", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
