package transport

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// networks under test; each constructor returns a fresh network.
func testNetworks(opts Options) map[string]Network {
	return map[string]Network{
		"chan": NewChanNetwork(opts),
		"tcp":  NewTCPNetwork(opts),
	}
}

func recvOne(t *testing.T, ep Endpoint, timeout time.Duration) Msg {
	t.Helper()
	select {
	case m, ok := <-ep.Recv():
		if !ok {
			t.Fatal("recv channel closed")
		}
		return m
	case <-time.After(timeout):
		t.Fatal("timed out waiting for message")
	}
	panic("unreachable")
}

func TestSendRecvBothNetworks(t *testing.T) {
	for name, nw := range testNetworks(Options{}) {
		t.Run(name, func(t *testing.T) {
			a, err := nw.NewEndpoint(nil)
			if err != nil {
				t.Fatal(err)
			}
			defer a.Close()
			b, err := nw.NewEndpoint(nil)
			if err != nil {
				t.Fatal(err)
			}
			defer b.Close()

			want := Msg{Src: 3, Tag: 7, Ctx: 2, Epoch: 1, Kind: KindUser, Data: []byte("hello fmi")}
			if err := a.Send(b.Addr(), want); err != nil {
				t.Fatal(err)
			}
			got := recvOne(t, b, 2*time.Second)
			if got.Src != want.Src || got.Tag != want.Tag || got.Ctx != want.Ctx ||
				got.Epoch != want.Epoch || got.Kind != want.Kind || !bytes.Equal(got.Data, want.Data) {
				t.Fatalf("got %+v, want %+v", got, want)
			}
		})
	}
}

func TestOrderPreservedPerPair(t *testing.T) {
	for name, nw := range testNetworks(Options{}) {
		t.Run(name, func(t *testing.T) {
			a, _ := nw.NewEndpoint(nil)
			defer a.Close()
			b, _ := nw.NewEndpoint(nil)
			defer b.Close()
			const n = 500
			for i := 0; i < n; i++ {
				if err := a.Send(b.Addr(), Msg{Tag: int32(i)}); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < n; i++ {
				m := recvOne(t, b, 2*time.Second)
				if m.Tag != int32(i) {
					t.Fatalf("message %d arrived with tag %d (reordered)", i, m.Tag)
				}
			}
		})
	}
}

func TestEmptyPayload(t *testing.T) {
	for name, nw := range testNetworks(Options{}) {
		t.Run(name, func(t *testing.T) {
			a, _ := nw.NewEndpoint(nil)
			defer a.Close()
			b, _ := nw.NewEndpoint(nil)
			defer b.Close()
			if err := a.Send(b.Addr(), Msg{Tag: 42}); err != nil {
				t.Fatal(err)
			}
			m := recvOne(t, b, 2*time.Second)
			if len(m.Data) != 0 || m.Tag != 42 {
				t.Fatalf("got %+v", m)
			}
		})
	}
}

func TestLargePayload(t *testing.T) {
	for name, nw := range testNetworks(Options{}) {
		t.Run(name, func(t *testing.T) {
			a, _ := nw.NewEndpoint(nil)
			defer a.Close()
			b, _ := nw.NewEndpoint(nil)
			defer b.Close()
			data := make([]byte, 8<<20)
			for i := range data {
				data[i] = byte(i * 31)
			}
			if err := a.Send(b.Addr(), Msg{Data: data}); err != nil {
				t.Fatal(err)
			}
			m := recvOne(t, b, 10*time.Second)
			if !bytes.Equal(m.Data, data) {
				t.Fatal("8MB payload corrupted")
			}
		})
	}
}

func TestSendToDeadPeerDropsSilently(t *testing.T) {
	for name, nw := range testNetworks(Options{DetectDelay: time.Millisecond}) {
		t.Run(name, func(t *testing.T) {
			die := make(chan struct{})
			a, _ := nw.NewEndpoint(nil)
			defer a.Close()
			b, _ := nw.NewEndpoint(die)
			close(die) // b dies abruptly
			time.Sleep(20 * time.Millisecond)
			// PSM semantics: no error reported to the sender.
			if err := a.Send(b.Addr(), Msg{Data: []byte("lost")}); err != nil {
				t.Fatalf("Send to dead peer errored: %v", err)
			}
		})
	}
}

func TestSendFromClosedEndpointErrors(t *testing.T) {
	for name, nw := range testNetworks(Options{}) {
		t.Run(name, func(t *testing.T) {
			a, _ := nw.NewEndpoint(nil)
			b, _ := nw.NewEndpoint(nil)
			defer b.Close()
			a.Close()
			if err := a.Send(b.Addr(), Msg{}); err != ErrClosed {
				t.Fatalf("err = %v, want ErrClosed", err)
			}
		})
	}
}

func TestConnectAndAccept(t *testing.T) {
	for name, nw := range testNetworks(Options{}) {
		t.Run(name, func(t *testing.T) {
			a, _ := nw.NewEndpoint(nil)
			defer a.Close()
			b, _ := nw.NewEndpoint(nil)
			defer b.Close()
			conn, err := a.Connect(b.Addr())
			if err != nil {
				t.Fatal(err)
			}
			var inc Conn
			select {
			case inc = <-b.Accept():
			case <-time.After(2 * time.Second):
				t.Fatal("no incoming connection")
			}
			if conn.Remote() != b.Addr() {
				t.Fatalf("conn.Remote = %v, want %v", conn.Remote(), b.Addr())
			}
			if inc.Remote() != a.Addr() {
				t.Fatalf("incoming Remote = %v, want %v", inc.Remote(), a.Addr())
			}
		})
	}
}

func TestConnectToDeadPeerFails(t *testing.T) {
	for name, nw := range testNetworks(Options{DetectDelay: time.Millisecond}) {
		t.Run(name, func(t *testing.T) {
			die := make(chan struct{})
			a, _ := nw.NewEndpoint(nil)
			defer a.Close()
			b, _ := nw.NewEndpoint(die)
			close(die)
			time.Sleep(20 * time.Millisecond)
			if _, err := a.Connect(b.Addr()); err == nil {
				t.Fatal("Connect to dead peer succeeded")
			}
		})
	}
}

func TestDisconnectEventOnDeath(t *testing.T) {
	for name, nw := range testNetworks(Options{DetectDelay: 5 * time.Millisecond}) {
		t.Run(name, func(t *testing.T) {
			die := make(chan struct{})
			a, _ := nw.NewEndpoint(nil)
			defer a.Close()
			b, _ := nw.NewEndpoint(die)
			conn, err := a.Connect(b.Addr())
			if err != nil {
				t.Fatal(err)
			}
			<-b.Accept()
			start := time.Now()
			close(die)
			select {
			case <-conn.Closed():
			case <-time.After(2 * time.Second):
				t.Fatal("no disconnect event after peer death")
			}
			if name == "chan" {
				if d := time.Since(start); d < 4*time.Millisecond {
					t.Fatalf("disconnect observed after %v, want >= DetectDelay", d)
				}
			}
		})
	}
}

func TestDisconnectEventOnExplicitClose(t *testing.T) {
	for name, nw := range testNetworks(Options{PropDelay: 2 * time.Millisecond}) {
		t.Run(name, func(t *testing.T) {
			a, _ := nw.NewEndpoint(nil)
			defer a.Close()
			b, _ := nw.NewEndpoint(nil)
			defer b.Close()
			conn, err := a.Connect(b.Addr())
			if err != nil {
				t.Fatal(err)
			}
			inc := <-b.Accept()
			conn.Close()
			select {
			case <-inc.Closed():
			case <-time.After(2 * time.Second):
				t.Fatal("remote side never observed close")
			}
			select {
			case <-conn.Closed():
			default:
				t.Fatal("local side not closed")
			}
		})
	}
}

func TestConcurrentSendersManyToOne(t *testing.T) {
	for name, nw := range testNetworks(Options{}) {
		t.Run(name, func(t *testing.T) {
			dst, _ := nw.NewEndpoint(nil)
			defer dst.Close()
			const senders, per = 8, 100
			var wg sync.WaitGroup
			for s := 0; s < senders; s++ {
				ep, _ := nw.NewEndpoint(nil)
				defer ep.Close()
				wg.Add(1)
				go func(s int, ep Endpoint) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						ep.Send(dst.Addr(), Msg{Src: int32(s), Tag: int32(i)})
					}
				}(s, ep)
			}
			got := make(map[int32]int32) // src -> next expected tag
			for n := 0; n < senders*per; n++ {
				m := recvOne(t, dst, 5*time.Second)
				if m.Tag != got[m.Src] {
					t.Fatalf("src %d: got tag %d, want %d (per-pair order broken)", m.Src, m.Tag, got[m.Src])
				}
				got[m.Src]++
			}
			wg.Wait()
		})
	}
}

func TestSendToUnknownAddrDrops(t *testing.T) {
	nw := NewChanNetwork(Options{})
	a, _ := nw.NewEndpoint(nil)
	defer a.Close()
	if err := a.Send(Addr("chan-9999"), Msg{}); err != nil {
		t.Fatalf("send to unknown addr errored: %v", err)
	}
}

func TestInboxBackpressureWakesOnPeerDeath(t *testing.T) {
	nw := NewChanNetwork(Options{InboxCap: 1})
	die := make(chan struct{})
	a, _ := nw.NewEndpoint(nil)
	defer a.Close()
	b, _ := nw.NewEndpoint(die)
	// Fill the inbox.
	if err := a.Send(b.Addr(), Msg{Tag: 0}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- a.Send(b.Addr(), Msg{Tag: 1}) }()
	time.Sleep(10 * time.Millisecond)
	close(die)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("blocked send returned %v after peer death, want nil drop", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked send never woke after peer death")
	}
}

func TestEndpointAddrsUnique(t *testing.T) {
	for name, nw := range testNetworks(Options{}) {
		t.Run(name, func(t *testing.T) {
			seen := map[Addr]bool{}
			for i := 0; i < 20; i++ {
				ep, err := nw.NewEndpoint(nil)
				if err != nil {
					t.Fatal(err)
				}
				defer ep.Close()
				if seen[ep.Addr()] {
					t.Fatalf("duplicate addr %v", ep.Addr())
				}
				seen[ep.Addr()] = true
			}
		})
	}
}

func TestFrameCodecRoundtrip(t *testing.T) {
	cases := []Msg{
		{},
		{Src: -1, Tag: -5, Ctx: 0, Epoch: 0, Kind: KindCtl},
		{Src: 1 << 20, Tag: 1 << 30, Ctx: 77, Epoch: 3, Kind: KindCkpt, Data: []byte{0}},
		{Data: bytes.Repeat([]byte{0xAB}, 65537)},
	}
	for i, m := range cases {
		var buf bytes.Buffer
		w := newTestWriter(&buf)
		var hdr [frameHeaderSize]byte
		if err := writeFrame(w, &hdr, m); err != nil {
			t.Fatal(err)
		}
		w.Flush()
		got, err := readFrame(newTestReader(&buf), nil)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.Src != m.Src || got.Tag != m.Tag || got.Ctx != m.Ctx || got.Epoch != m.Epoch || got.Kind != m.Kind {
			t.Fatalf("case %d: header mismatch: %+v vs %+v", i, got, m)
		}
		if !bytes.Equal(got.Data, m.Data) {
			t.Fatalf("case %d: payload mismatch", i)
		}
	}
}

func TestTCPEndpointCloseClosesRecv(t *testing.T) {
	nw := NewTCPNetwork(Options{})
	a, _ := nw.NewEndpoint(nil)
	a.Close()
	select {
	case _, ok := <-a.Recv():
		if ok {
			t.Fatal("unexpected message")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv not closed after endpoint Close")
	}
}

func BenchmarkChanSendRecv(b *testing.B) {
	nw := NewChanNetwork(Options{})
	a, _ := nw.NewEndpoint(nil)
	defer a.Close()
	dst, _ := nw.NewEndpoint(nil)
	defer dst.Close()
	payload := make([]byte, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Send(dst.Addr(), Msg{Data: payload})
		<-dst.Recv()
	}
}

func BenchmarkTCPSendRecv(b *testing.B) {
	nw := NewTCPNetwork(Options{})
	a, _ := nw.NewEndpoint(nil)
	defer a.Close()
	dst, _ := nw.NewEndpoint(nil)
	defer dst.Close()
	payload := make([]byte, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Send(dst.Addr(), Msg{Data: payload})
		<-dst.Recv()
	}
}

// ensure fmt is used even if assertions change
var _ = fmt.Sprintf
