package transport

import (
	"testing"

	"fmi/internal/bufpool"
)

// BenchmarkMatcherIngress measures matcher ingress under fan-in: 8
// concurrent senders flood one receiver, which drains the per-source
// lanes round-robin. Before lane sharding every sender serialised on
// one ingress mutex; with lanes the senders only meet at the lane of
// the rank they target. One benchmark op is one message.
func BenchmarkMatcherIngress(b *testing.B) {
	const senders = 8
	nw := NewChanNetwork(Options{Pool: bufpool.New(), Endpoints: senders + 1})
	dst, err := nw.NewEndpoint(nil)
	if err != nil {
		b.Fatal(err)
	}
	srcs := make([]Endpoint, senders)
	for i := range srcs {
		if srcs[i], err = nw.NewEndpoint(nil); err != nil {
			b.Fatal(err)
		}
	}
	m := NewMatcher(dst)
	defer func() {
		m.Close()
		dst.Close()
		for _, s := range srcs {
			s.Close()
		}
	}()
	payload := make([]byte, 2048)

	rounds := b.N/senders + 1
	b.ResetTimer()
	for s := 0; s < senders; s++ {
		go func(s int) {
			for i := 0; i < rounds; i++ {
				if err := srcs[s].Send(dst.Addr(), Msg{Src: int32(s), Tag: 1, Data: payload}); err != nil {
					return
				}
			}
		}(s)
	}
	for i := 0; i < rounds*senders; i++ {
		msg, err := m.Recv(0, int32(i%senders), 1, nil)
		if err != nil {
			b.Fatal(err)
		}
		msg.Release()
	}
}

// BenchmarkRingSendRecv measures the co-located SPSC fast path: both
// endpoints on one node, sequential send → matched receive → release.
// The receive pumps the ring inline, so there is no goroutine hand-off.
func BenchmarkRingSendRecv(b *testing.B) {
	nw := NewChanNetwork(Options{Pool: bufpool.New(), Endpoints: 2})
	src, err := nw.NewEndpointOnNode(0, nil)
	if err != nil {
		b.Fatal(err)
	}
	dst, err := nw.NewEndpointOnNode(0, nil)
	if err != nil {
		b.Fatal(err)
	}
	m := NewMatcher(dst)
	defer func() { m.Close(); dst.Close(); src.Close() }()
	payload := make([]byte, 16<<10)

	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := src.Send(dst.Addr(), Msg{Src: 0, Tag: 1, Data: payload}); err != nil {
			b.Fatal(err)
		}
		msg, err := m.Recv(0, 0, 1, nil)
		if err != nil {
			b.Fatal(err)
		}
		msg.Release()
	}
}

// BenchmarkRingFlood measures a sustained producer/consumer flood over
// a short ring, the regime where send-side coalescing kicks in. One op
// is one 2 KiB message.
func BenchmarkRingFlood(b *testing.B) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"slots16", Options{Pool: bufpool.New(), Endpoints: 2, RingSlots: 16}},
		{"slots256", Options{Pool: bufpool.New(), Endpoints: 2}},
		{"slots16-nocoalesce", Options{Pool: bufpool.New(), Endpoints: 2, RingSlots: 16, DisableCoalesce: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			nw := NewChanNetwork(tc.opts)
			src, err := nw.NewEndpointOnNode(0, nil)
			if err != nil {
				b.Fatal(err)
			}
			dst, err := nw.NewEndpointOnNode(0, nil)
			if err != nil {
				b.Fatal(err)
			}
			m := NewMatcher(dst)
			defer func() { m.Close(); dst.Close(); src.Close() }()
			payload := make([]byte, 2048)

			b.ResetTimer()
			go func() {
				for i := 0; i < b.N; i++ {
					if err := src.Send(dst.Addr(), Msg{Src: 0, Tag: 1, Data: payload}); err != nil {
						return
					}
				}
			}()
			for i := 0; i < b.N; i++ {
				msg, err := m.Recv(0, 0, 1, nil)
				if err != nil {
					b.Fatal(err)
				}
				msg.Release()
			}
		})
	}
}
