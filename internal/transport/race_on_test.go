//go:build race

package transport

// raceEnabled reports whether this binary was built with -race; the
// SPSC stress test shrinks its message count to fit the detector's
// per-op overhead.
const raceEnabled = true
