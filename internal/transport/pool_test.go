package transport

import (
	"bytes"
	"testing"
	"time"

	"fmi/internal/bufpool"
)

// TestChanSendPooledRoundtrip pins the pooled send contract: payloads
// arrive byte-identical in both pooling modes, and a released frame
// goes back to the arena.
func TestChanSendPooledRoundtrip(t *testing.T) {
	for _, pool := range []*bufpool.Arena{nil, bufpool.New()} {
		nw := NewChanNetwork(Options{Pool: pool})
		a, _ := nw.NewEndpoint(nil)
		b, _ := nw.NewEndpoint(nil)
		payload := []byte("the payload survives pooling byte-for-byte")
		if err := a.Send(b.Addr(), Msg{Src: 1, Tag: 7, Data: payload}); err != nil {
			t.Fatal(err)
		}
		m := <-b.Recv()
		if !bytes.Equal(m.Data, payload) {
			t.Fatalf("pool=%v: got %q", pool != nil, m.Data)
		}
		m.Release()
		if pool != nil {
			if s := pool.Stats(); s.Gets != 1 || s.Puts != 1 {
				t.Fatalf("stats = %+v, want 1 get / 1 put", s)
			}
		}
		a.Close()
		b.Close()
	}
}

// TestChanSendLeakDetection drives the debug arena through the chan
// network: an unreleased frame is a leak, releasing clears it, and
// Detach takes the payload out of the arena economy.
func TestChanSendLeakDetection(t *testing.T) {
	pool := bufpool.NewDebug()
	nw := NewChanNetwork(Options{Pool: pool})
	a, _ := nw.NewEndpoint(nil)
	b, _ := nw.NewEndpoint(nil)
	defer a.Close()
	defer b.Close()

	a.Send(b.Addr(), Msg{Data: []byte("leaked")})
	a.Send(b.Addr(), Msg{Data: []byte("released")})
	a.Send(b.Addr(), Msg{Data: []byte("detached")})

	leaked := <-b.Recv()
	released := <-b.Recv()
	detached := <-b.Recv()
	_ = leaked // dropped without Release: must show up as a leak

	released.Release()
	kept := detached.Detach()
	if string(kept) != "detached" {
		t.Fatalf("detached payload = %q", kept)
	}
	if got := pool.Outstanding(); got != 1 {
		t.Fatalf("outstanding = %d, want 1 (only the dropped frame)", got)
	}
	leaks := pool.Leaks()
	if len(leaks) != 1 {
		t.Fatalf("leaks = %v", leaks)
	}
	leaked.Release()
	if got := pool.Outstanding(); got != 0 {
		t.Fatalf("outstanding after late release = %d", got)
	}
}

// TestMatcherReleasesDrops checks the silent-drop paths recycle their
// frames: stale epochs, epoch-fence discards, and dedup suppression
// all hand the pooled copy back to the arena.
func TestMatcherReleasesDrops(t *testing.T) {
	pool := bufpool.NewDebug()
	nw := NewChanNetwork(Options{Pool: pool})
	a, _ := nw.NewEndpoint(nil)
	b, _ := nw.NewEndpoint(nil)
	defer a.Close()
	defer b.Close()
	m := NewMatcher(b)
	defer m.Close()
	m.AdvanceEpoch(2)

	// Stale epoch: dropped on arrival.
	a.Send(b.Addr(), Msg{Epoch: 1, Data: []byte("stale")})
	// Current epoch, unexpected: discarded at the next fence.
	a.Send(b.Addr(), Msg{Epoch: 2, Tag: 9, Data: []byte("fenced")})
	waitFor(t, func() bool {
		_, dropped, _ := m.Stats()
		return dropped >= 1
	})
	m.AdvanceEpoch(3)
	waitFor(t, func() bool { return pool.Outstanding() == 0 })

	// Dedup suppression.
	m.EnableDedup(4)
	a.Send(b.Addr(), Msg{Src: 1, Epoch: 3, Seq: 5, Data: []byte("first")})
	a.Send(b.Addr(), Msg{Src: 1, Epoch: 3, Seq: 5, Data: []byte("dup")})
	msg, err := m.Recv(0, 1, AnyTag, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		_, _, dup := m.Stats()
		return dup == 1
	})
	msg.Release()
	waitFor(t, func() bool { return pool.Outstanding() == 0 })
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChanSendAllocs pins the pooled chan send path near zero
// allocations per message (epsilon for sync.Pool per-P cache misses
// after a GC).
func TestChanSendAllocs(t *testing.T) {
	pool := bufpool.New()
	nw := NewChanNetwork(Options{Pool: pool})
	a, _ := nw.NewEndpoint(nil)
	b, _ := nw.NewEndpoint(nil)
	defer a.Close()
	defer b.Close()
	payload := make([]byte, 1024)
	dst := b.Addr()
	inbox := b.Recv()

	send := func() {
		if err := a.Send(dst, Msg{Src: 1, Tag: 2, Data: payload}); err != nil {
			t.Fatal(err)
		}
		m := <-inbox
		m.Release()
	}
	send() // warm the arena class
	avg := testing.AllocsPerRun(2000, send)
	if avg > 0.5 {
		t.Fatalf("pooled chan send allocs/op = %v, want ~0", avg)
	}
}

// TestTCPPooledRoundtrip sends pooled frames over the real TCP plane
// and verifies contents and release accounting end to end.
func TestTCPPooledRoundtrip(t *testing.T) {
	pool := bufpool.New()
	nw := NewTCPNetwork(Options{Pool: pool})
	a, _ := nw.NewEndpoint(nil)
	b, _ := nw.NewEndpoint(nil)
	defer a.Close()
	defer b.Close()

	const n = 32
	for i := 0; i < n; i++ {
		if err := a.Send(b.Addr(), Msg{Src: 1, Tag: int32(i), Data: []byte{byte(i), 0xEE}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		m := <-b.Recv()
		if m.Tag != int32(i) || m.Data[0] != byte(i) {
			t.Fatalf("frame %d: got tag=%d data=%v (order or content lost)", i, m.Tag, m.Data)
		}
		m.Release()
	}
}
