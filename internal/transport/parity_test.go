package transport

import (
	"fmt"
	"testing"
	"time"
)

// TestMatcherParityChanVsTCP drives the same traffic script through a
// chan-backed and a TCP-backed matcher and asserts identical observable
// behaviour: delivery order, unexpected-queue contents, stale-epoch
// discard, duplicate suppression, and counters — including an epoch
// bump with messages still in flight.
func TestMatcherParityChanVsTCP(t *testing.T) {
	type outcome struct {
		received  []string
		leftover  []string
		delivered uint64
		dropped   uint64
		dup       uint64
		seen      []uint64
	}

	run := func(t *testing.T, nw Network) outcome {
		a, err := nw.NewEndpoint(nil)
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		b, err := nw.NewEndpoint(nil)
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		m := NewMatcher(b)
		defer m.Close()
		m.EnableDedup(4)
		m.AdvanceEpoch(1)

		send := func(msg Msg) {
			t.Helper()
			if err := a.Send(b.Addr(), msg); err != nil {
				t.Fatal(err)
			}
		}

		// Phase 1, epoch 1: interleaved tags, one duplicate, one
		// message left unconsumed in the unexpected queue.
		send(Msg{Src: 1, Tag: 1, Epoch: 1, Seq: 1, Data: []byte("e1-a")})
		send(Msg{Src: 1, Tag: 2, Epoch: 1, Seq: 2, Data: []byte("e1-queued")})
		send(Msg{Src: 1, Tag: 1, Epoch: 1, Seq: 1, Data: []byte("e1-dup")})
		send(Msg{Src: 1, Tag: 1, Epoch: 1, Seq: 3, Data: []byte("e1-b")})
		// In-flight across the epoch bump: a straggler from epoch 1
		// (must be discarded after the bump) and an early arrival from
		// epoch 2 (must be buffered, then delivered).
		send(Msg{Src: 2, Tag: 5, Epoch: 1, Seq: 1, Data: []byte("stale")})
		send(Msg{Src: 2, Tag: 5, Epoch: 2, Seq: 2, Data: []byte("future")})

		var o outcome
		recv := func(ctx uint32, src, tag int32) {
			t.Helper()
			msg, err := m.Recv(ctx, src, tag, nil)
			if err != nil {
				t.Fatal(err)
			}
			o.received = append(o.received, string(msg.Data))
		}
		recv(0, 1, 1) // e1-a
		recv(0, 1, 1) // e1-b (dup suppressed in between)

		// Let the stragglers land before bumping the epoch, so the
		// "stale" message is provably in the matcher, not the network.
		deadline := time.Now().Add(2 * time.Second)
		for {
			_, dropped, dup := m.Stats()
			if dup >= 1 && dropped == 0 {
				unex, fut := m.queuedLen()
				landed := unex + fut
				if landed >= 3 {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatal("timed out waiting for in-flight messages")
			}
			time.Sleep(time.Millisecond)
		}

		m.AdvanceEpoch(2)
		recv(0, 2, 5) // future, now current

		// Whatever is still queued, in arrival order.
		for {
			msg, ok := m.TryRecv(0, AnySource, AnyTag)
			if !ok {
				break
			}
			o.leftover = append(o.leftover, string(msg.Data))
		}
		o.delivered, o.dropped, o.dup = m.Stats()
		o.seen = m.SeenVector()
		return o
	}

	chanOut := run(t, NewChanNetwork(Options{DetectDelay: time.Millisecond, PropDelay: time.Millisecond}))
	tcpOut := run(t, NewTCPNetwork(Options{DetectDelay: time.Millisecond, PropDelay: time.Millisecond}))

	if fmt.Sprint(chanOut) != fmt.Sprint(tcpOut) {
		t.Fatalf("chan and TCP transports diverged:\nchan: %+v\ntcp:  %+v", chanOut, tcpOut)
	}
	want := outcome{
		received:  []string{"e1-a", "e1-b", "future"},
		leftover:  nil, // e1-queued discarded at the epoch bump
		delivered: 3,
		dropped:   2, // e1-queued + stale
		dup:       1,
		seen:      []uint64{0, 3, 2, 0},
	}
	if fmt.Sprint(chanOut) != fmt.Sprint(want) {
		t.Fatalf("outcome = %+v, want %+v", chanOut, want)
	}
}
