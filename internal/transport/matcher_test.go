package transport

import (
	"sync"
	"testing"
	"time"
)

func newMatcherPair(t *testing.T) (a Endpoint, b Endpoint, mb *Matcher) {
	t.Helper()
	nw := NewChanNetwork(Options{})
	a, err := nw.NewEndpoint(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err = nw.NewEndpoint(nil)
	if err != nil {
		t.Fatal(err)
	}
	mb = NewMatcher(b)
	t.Cleanup(func() { mb.Close(); a.Close(); b.Close() })
	return a, b, mb
}

func TestMatcherBasicMatch(t *testing.T) {
	a, b, mb := newMatcherPair(t)
	a.Send(b.Addr(), Msg{Src: 1, Tag: 9, Ctx: 3, Data: []byte("x")})
	msg, err := mb.Recv(3, 1, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(msg.Data) != "x" {
		t.Fatalf("got %q", msg.Data)
	}
}

func TestMatcherUnexpectedQueue(t *testing.T) {
	a, b, mb := newMatcherPair(t)
	// Arrives before the receive is posted.
	a.Send(b.Addr(), Msg{Src: 2, Tag: 5, Data: []byte("early")})
	time.Sleep(10 * time.Millisecond)
	msg, err := mb.Recv(0, 2, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(msg.Data) != "early" {
		t.Fatalf("got %q", msg.Data)
	}
}

func TestMatcherSelectivity(t *testing.T) {
	a, b, mb := newMatcherPair(t)
	a.Send(b.Addr(), Msg{Src: 1, Tag: 1, Data: []byte("wrong tag")})
	a.Send(b.Addr(), Msg{Src: 1, Tag: 2, Data: []byte("right")})
	msg, err := mb.Recv(0, 1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(msg.Data) != "right" {
		t.Fatalf("got %q", msg.Data)
	}
	// The other message is still retrievable.
	msg, err = mb.Recv(0, 1, 1, nil)
	if err != nil || string(msg.Data) != "wrong tag" {
		t.Fatalf("got %q, %v", msg.Data, err)
	}
}

func TestMatcherAnySource(t *testing.T) {
	a, b, mb := newMatcherPair(t)
	a.Send(b.Addr(), Msg{Src: 7, Tag: 4, Data: []byte("any")})
	msg, err := mb.Recv(0, AnySource, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Src != 7 {
		t.Fatalf("src = %d", msg.Src)
	}
}

func TestMatcherAnyTag(t *testing.T) {
	a, b, mb := newMatcherPair(t)
	a.Send(b.Addr(), Msg{Src: 7, Tag: 123, Data: []byte("any")})
	msg, err := mb.Recv(0, 7, AnyTag, nil)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Tag != 123 {
		t.Fatalf("tag = %d", msg.Tag)
	}
}

func TestMatcherNonOvertaking(t *testing.T) {
	a, b, mb := newMatcherPair(t)
	const n = 200
	for i := 0; i < n; i++ {
		a.Send(b.Addr(), Msg{Src: 1, Tag: 8, Data: []byte{byte(i)}})
	}
	for i := 0; i < n; i++ {
		msg, err := mb.Recv(0, 1, 8, nil)
		if err != nil {
			t.Fatal(err)
		}
		if msg.Data[0] != byte(i) {
			t.Fatalf("message %d overtaken: got %d", i, msg.Data[0])
		}
	}
}

func TestMatcherStaleEpochDiscarded(t *testing.T) {
	a, b, mb := newMatcherPair(t)
	mb.AdvanceEpoch(2)
	a.Send(b.Addr(), Msg{Src: 1, Tag: 1, Epoch: 1, Data: []byte("stale")})
	a.Send(b.Addr(), Msg{Src: 1, Tag: 1, Epoch: 2, Data: []byte("fresh")})
	msg, err := mb.Recv(0, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(msg.Data) != "fresh" {
		t.Fatalf("got %q, stale message not discarded", msg.Data)
	}
	_, dropped, _ := mb.Stats()
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
}

func TestMatcherFutureEpochBuffered(t *testing.T) {
	a, b, mb := newMatcherPair(t)
	a.Send(b.Addr(), Msg{Src: 1, Tag: 1, Epoch: 3, Data: []byte("future")})
	time.Sleep(10 * time.Millisecond)
	if _, ok := mb.TryRecv(0, 1, 1); ok {
		t.Fatal("future-epoch message delivered early")
	}
	mb.AdvanceEpoch(3)
	msg, err := mb.Recv(0, 1, 1, nil)
	if err != nil || string(msg.Data) != "future" {
		t.Fatalf("got %q, %v", msg.Data, err)
	}
}

func TestMatcherAdvanceEpochDropsUnexpected(t *testing.T) {
	a, b, mb := newMatcherPair(t)
	a.Send(b.Addr(), Msg{Src: 1, Tag: 1, Epoch: 0, Data: []byte("old")})
	time.Sleep(10 * time.Millisecond)
	mb.AdvanceEpoch(1)
	if _, ok := mb.TryRecv(0, 1, 1); ok {
		t.Fatal("pre-recovery unexpected message survived epoch bump")
	}
}

func TestMatcherCancel(t *testing.T) {
	_, _, mb := newMatcherPair(t)
	cancel := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		_, err := mb.Recv(0, 1, 1, cancel)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(cancel)
	select {
	case err := <-errCh:
		if err != ErrCancelled {
			t.Fatalf("err = %v, want ErrCancelled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled Recv never returned")
	}
}

func TestMatcherCancelledReqDoesNotStealMessages(t *testing.T) {
	a, b, mb := newMatcherPair(t)
	cancel := make(chan struct{})
	close(cancel)
	// This receive is cancelled immediately but its request may
	// briefly linger in the pending list.
	if _, err := mb.Recv(0, 1, 1, cancel); err != ErrCancelled {
		t.Fatalf("err = %v", err)
	}
	a.Send(b.Addr(), Msg{Src: 1, Tag: 1, Data: []byte("keep")})
	msg, err := mb.Recv(0, 1, 1, nil)
	if err != nil || string(msg.Data) != "keep" {
		t.Fatalf("live recv got %q, %v", msg.Data, err)
	}
}

func TestMatcherClose(t *testing.T) {
	_, _, mb := newMatcherPair(t)
	errCh := make(chan error, 1)
	go func() {
		_, err := mb.Recv(0, 1, 1, nil)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	mb.Close()
	if err := <-errCh; err != ErrMatcherClosed {
		t.Fatalf("err = %v, want ErrMatcherClosed", err)
	}
	if _, err := mb.Recv(0, 1, 1, nil); err != ErrMatcherClosed {
		t.Fatalf("post-close Recv err = %v", err)
	}
}

func TestMatcherTryRecv(t *testing.T) {
	a, b, mb := newMatcherPair(t)
	if _, ok := mb.TryRecv(0, 1, 1); ok {
		t.Fatal("TryRecv on empty queue succeeded")
	}
	a.Send(b.Addr(), Msg{Src: 1, Tag: 1, Data: []byte("z")})
	deadline := time.Now().Add(2 * time.Second)
	for {
		if msg, ok := mb.TryRecv(0, 1, 1); ok {
			if string(msg.Data) != "z" {
				t.Fatalf("got %q", msg.Data)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("TryRecv never saw the message")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMatcherConcurrentRecvs(t *testing.T) {
	a, b, mb := newMatcherPair(t)
	const n = 100
	var wg sync.WaitGroup
	got := make([]bool, n)
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			msg, err := mb.Recv(0, AnySource, 77, nil)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			got[msg.Data[0]] = true
			mu.Unlock()
		}()
	}
	for i := 0; i < n; i++ {
		a.Send(b.Addr(), Msg{Src: 1, Tag: 77, Data: []byte{byte(i)}})
	}
	wg.Wait()
	for i, ok := range got {
		if !ok {
			t.Fatalf("message %d never delivered", i)
		}
	}
}

func TestMatcherCtxIsolation(t *testing.T) {
	a, b, mb := newMatcherPair(t)
	a.Send(b.Addr(), Msg{Src: 1, Tag: 1, Ctx: 10, Data: []byte("c10")})
	a.Send(b.Addr(), Msg{Src: 1, Tag: 1, Ctx: 11, Data: []byte("c11")})
	msg, err := mb.Recv(11, 1, 1, nil)
	if err != nil || string(msg.Data) != "c11" {
		t.Fatalf("ctx 11 got %q, %v", msg.Data, err)
	}
	msg, err = mb.Recv(10, 1, 1, nil)
	if err != nil || string(msg.Data) != "c10" {
		t.Fatalf("ctx 10 got %q, %v", msg.Data, err)
	}
}
