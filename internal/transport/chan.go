package transport

import (
	"fmt"
	"sync"
	"time"
)

// ChanNetwork is an in-process Network built on Go channels. It is the
// default substrate: a stand-in for the InfiniBand data plane with
// configurable failure-observation delays.
type ChanNetwork struct {
	opts Options

	mu     sync.Mutex
	eps    map[Addr]*chanEndpoint
	nextID int
}

// NewChanNetwork creates an empty in-process network.
func NewChanNetwork(opts Options) *ChanNetwork {
	return &ChanNetwork{opts: opts, eps: make(map[Addr]*chanEndpoint)}
}

// NewEndpoint creates an endpoint on the network. If die is non-nil,
// closing it kills the endpoint abruptly.
func (n *ChanNetwork) NewEndpoint(die <-chan struct{}) (Endpoint, error) {
	n.mu.Lock()
	n.nextID++
	ep := &chanEndpoint{
		net:    n,
		addr:   Addr(fmt.Sprintf("chan-%d", n.nextID)),
		inbox:  make(chan Msg, n.opts.inboxCap()),
		accept: make(chan Conn, 64),
		dead:   make(chan struct{}),
	}
	if n.opts.MsgDelay > 0 {
		ep.delayQ = make(chan delayedMsg, n.opts.inboxCap())
		go ep.delayLoop()
	}
	n.eps[ep.addr] = ep
	n.mu.Unlock()

	if die != nil {
		go func() {
			select {
			case <-die:
				ep.kill()
			case <-ep.dead:
			}
		}()
	}
	return ep, nil
}

func (n *ChanNetwork) lookup(a Addr) *chanEndpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.eps[a]
}

func (n *ChanNetwork) remove(a Addr) {
	n.mu.Lock()
	delete(n.eps, a)
	n.mu.Unlock()
}

type chanEndpoint struct {
	net    *ChanNetwork
	addr   Addr
	inbox  chan Msg
	accept chan Conn
	delayQ chan delayedMsg // non-nil iff Options.MsgDelay > 0

	mu       sync.Mutex
	conns    []*chanConnEnd
	deadOnce sync.Once
	dead     chan struct{} // closed on kill/close
}

func (ep *chanEndpoint) Addr() Addr          { return ep.addr }
func (ep *chanEndpoint) Recv() <-chan Msg    { return ep.inbox }
func (ep *chanEndpoint) Accept() <-chan Conn { return ep.accept }

func (ep *chanEndpoint) isDead() bool {
	select {
	case <-ep.dead:
		return true
	default:
		return false
	}
}

// Send delivers m to 'to'. Messages to dead or unknown endpoints are
// dropped silently (PSM semantics); a full destination inbox blocks
// until space, destination death, or sender death.
//
// MPI eager-send semantics: the caller may reuse its buffer as soon as
// Send returns, so the payload is copied here (on a real interconnect
// the NIC has DMA'd the eager buffer by then).
func (ep *chanEndpoint) Send(to Addr, m Msg) error {
	if ep.isDead() {
		return ErrClosed
	}
	dst := ep.net.lookup(to)
	if dst == nil || dst.isDead() {
		return nil // silent drop
	}
	if len(m.Data) > 0 {
		cp := ep.net.opts.Pool.Get(len(m.Data))
		copy(cp, m.Data)
		m.Data = cp
		m.pool = ep.net.opts.Pool
	}
	if ep.delayQ != nil {
		// Simulated wire latency: queue for delivery MsgDelay from now.
		// One goroutine drains the queue in send order, so per-pair
		// FIFO is preserved and a burst of sends pipelines (all arrive
		// ~MsgDelay later) instead of serialising.
		select {
		case ep.delayQ <- delayedMsg{dst: dst, m: m, due: time.Now().Add(ep.net.opts.MsgDelay)}:
			return nil
		case <-ep.dead:
			m.Release()
			return ErrClosed
		}
	}
	return ep.deliver(dst, m)
}

// deliver pushes m into dst's inbox, blocking only when it is full.
func (ep *chanEndpoint) deliver(dst *chanEndpoint, m Msg) error {
	select {
	case dst.inbox <- m:
		return nil
	default:
	}
	// Inbox full: block, but wake on either side dying.
	select {
	case dst.inbox <- m:
		return nil
	case <-dst.dead:
		m.Release() // peer died; drop and recycle the frame copy
		return nil
	case <-ep.dead:
		m.Release()
		return ErrClosed
	}
}

// delayedMsg is one in-flight message waiting out the simulated wire
// latency.
type delayedMsg struct {
	dst *chanEndpoint
	m   Msg
	due time.Time
}

// delayLoop delivers queued messages once their latency has elapsed.
// Deadlines are monotone in queue order (every message waits the same
// MsgDelay), so waiting on the head never delays a message behind it.
func (ep *chanEndpoint) delayLoop() {
	timer := time.NewTimer(0)
	defer timer.Stop()
	for {
		select {
		case dm := <-ep.delayQ:
			if d := time.Until(dm.due); d > 0 {
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
				timer.Reset(d)
				select {
				case <-timer.C:
				case <-ep.dead:
					dm.m.Release()
					ep.drainDelayQ()
					return
				}
			}
			ep.deliver(dm.dst, dm.m)
		case <-ep.dead:
			ep.drainDelayQ()
			return
		}
	}
}

// drainDelayQ recycles frames stranded in the latency queue when the
// endpoint dies (they were lost on the wire; PSM drops them silently,
// we just hand the copies back to the arena).
func (ep *chanEndpoint) drainDelayQ() {
	for {
		select {
		case dm := <-ep.delayQ:
			dm.m.Release()
		default:
			return
		}
	}
}

// Connect establishes a monitored connection to peer.
func (ep *chanEndpoint) Connect(peer Addr) (Conn, error) {
	if ep.isDead() {
		return nil, ErrClosed
	}
	dst := ep.net.lookup(peer)
	if dst == nil || dst.isDead() {
		return nil, ErrUnreachable
	}
	local := &chanConnEnd{local: ep.addr, remote: peer, closed: make(chan struct{}), opts: ep.net.opts}
	remote := &chanConnEnd{local: peer, remote: ep.addr, closed: make(chan struct{}), opts: ep.net.opts}
	local.peer, remote.peer = remote, local

	ep.addConn(local)
	if !dst.addConn(remote) {
		// Peer died in the window; report unreachable.
		local.fire(0)
		return nil, ErrUnreachable
	}
	select {
	case dst.accept <- remote:
	case <-dst.dead:
		local.fire(0)
		return nil, ErrUnreachable
	}
	return local, nil
}

func (ep *chanEndpoint) addConn(c *chanConnEnd) bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.isDead() {
		return false
	}
	ep.conns = append(ep.conns, c)
	return true
}

// Close shuts down gracefully: peers observe conn closes after
// PropDelay.
func (ep *chanEndpoint) Close() error {
	ep.shutdown(ep.net.opts.PropDelay)
	return nil
}

// kill is abrupt death: peers observe conn closes after DetectDelay.
func (ep *chanEndpoint) kill() {
	ep.shutdown(ep.net.opts.DetectDelay)
}

func (ep *chanEndpoint) shutdown(remoteDelay time.Duration) {
	ep.deadOnce.Do(func() {
		ep.mu.Lock()
		close(ep.dead)
		conns := ep.conns
		ep.conns = nil
		ep.mu.Unlock()
		ep.net.remove(ep.addr)
		for _, c := range conns {
			c.fire(0)                // local side sees it immediately
			c.peer.fire(remoteDelay) // remote observes after delay
		}
	})
}

// chanConnEnd is one side of a monitored connection.
type chanConnEnd struct {
	local, remote Addr
	peer          *chanConnEnd
	opts          Options

	once   sync.Once
	closed chan struct{}
}

func (c *chanConnEnd) Local() Addr             { return c.local }
func (c *chanConnEnd) Remote() Addr            { return c.remote }
func (c *chanConnEnd) Closed() <-chan struct{} { return c.closed }

// Close tears the connection down; the remote side observes it after
// PropDelay (this is the log-ring propagation mechanism).
func (c *chanConnEnd) Close() error {
	c.fire(0)
	c.peer.fire(c.opts.PropDelay)
	return nil
}

func (c *chanConnEnd) fire(after time.Duration) {
	c.once.Do(func() {
		if after <= 0 {
			close(c.closed)
			return
		}
		time.AfterFunc(after, func() { close(c.closed) })
	})
}
