package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fmi/internal/enc"
)

// ChanNetwork is an in-process Network built on Go channels. It is the
// default substrate: a stand-in for the InfiniBand data plane with
// configurable failure-observation delays.
//
// Endpoints created with a node id (NewEndpointOnNode) additionally
// get the intra-node fast path: a lock-free per-(sender, receiver)
// ring replaces the shared inbox channel for co-located pairs, with
// send-side coalescing when a ring backs up. Cross-node pairs,
// unplaced endpoints, and delayed (MsgDelay) networks stay on the
// channel path.
type ChanNetwork struct {
	opts Options

	mu     sync.Mutex
	eps    map[Addr]*chanEndpoint
	nextID int
}

// NewChanNetwork creates an empty in-process network.
func NewChanNetwork(opts Options) *ChanNetwork {
	return &ChanNetwork{opts: opts, eps: make(map[Addr]*chanEndpoint, opts.Endpoints)}
}

// NewEndpoint creates an unplaced endpoint on the network (node id
// -1: never on the ring fast path). If die is non-nil, closing it
// kills the endpoint abruptly.
func (n *ChanNetwork) NewEndpoint(die <-chan struct{}) (Endpoint, error) {
	return n.NewEndpointOnNode(-1, die)
}

// NewEndpointOnNode creates an endpoint placed on a node. Pairs of
// endpoints sharing a node id >= 0 exchange messages over per-pair
// rings; everything else uses the channel path. n.mu is held for the
// registration only and released on the single exit path — no early
// returns sit between Lock and Unlock.
func (n *ChanNetwork) NewEndpointOnNode(node int, die <-chan struct{}) (Endpoint, error) {
	ringable := node >= 0 && !n.opts.DisableRings && n.opts.MsgDelay == 0

	n.mu.Lock()
	n.nextID++
	ep := &chanEndpoint{
		net:    n,
		addr:   Addr(fmt.Sprintf("chan-%d", n.nextID)),
		node:   node,
		inbox:  make(chan Msg, n.opts.inboxCap()),
		accept: make(chan Conn, 64),
		dead:   make(chan struct{}),
	}
	if ringable {
		ep.ringBell = make(chan struct{}, 1)
	}
	if n.opts.MsgDelay > 0 {
		ep.delayQ = make(chan delayedMsg, n.opts.inboxCap())
	}
	n.eps[ep.addr] = ep
	n.mu.Unlock()

	if ep.delayQ != nil {
		go ep.delayLoop()
	}
	if die != nil {
		go func() {
			select {
			case <-die:
				ep.kill()
			case <-ep.dead:
			}
		}()
	}
	return ep, nil
}

func (n *ChanNetwork) lookup(a Addr) *chanEndpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.eps[a]
}

func (n *ChanNetwork) remove(a Addr) {
	n.mu.Lock()
	delete(n.eps, a)
	n.mu.Unlock()
}

type chanEndpoint struct {
	net    *ChanNetwork
	addr   Addr
	node   int // -1 = unplaced (never on the ring path)
	inbox  chan Msg
	accept chan Conn
	delayQ chan delayedMsg // non-nil iff Options.MsgDelay > 0

	mu       sync.Mutex
	conns    []*chanConnEnd
	deadOnce sync.Once
	dead     chan struct{} // closed on kill/close

	// Ring ingress (receiver side). ringBell wakes the matcher's demux
	// for traffic that arrives while a receiver is parked: producers
	// tap it only when ringWait says someone is waiting (an active
	// receiver pumps its own rings inline, so waking the demux for it
	// would just buy lock contention). ringPend counts queued items
	// (ring slots + overflow-batch entries) across all inbound rings
	// so an empty pump is one atomic load; drainMu serialises pumps
	// (two concurrent drains of one ring would reorder its pair).
	ringBell chan struct{} // nil when the endpoint can never have rings
	ringPend atomic.Int64
	ringWait atomic.Int32 // receivers parked (or about to park) on a match
	drainMu  sync.Mutex
	ringMu   sync.Mutex
	ringIn   []*ringPath          // creation order; pumped in this order
	ringInP  atomic.Pointer[[]*ringPath] // published snapshot of ringIn for lock-free pumps
	ringSrc  map[Addr]*ringPath   // sender addr -> its inbound ring

	// Sender-side route cache: destination addr -> *ringPath, with a
	// typed-nil entry meaning "resolved: channel path". Addresses are
	// never reused, so entries cannot go stale into wrongness.
	ringOut sync.Map
}

// ringPath is one sender's fast path to one co-located receiver: the
// ring plus the overflow coalescing batch. pend holds frames that
// arrived while the ring was full; they are strictly newer than
// anything in the ring (a send always tries to flush pend into the
// ring before enqueueing), which is what lets the consumer drain the
// ring first and then steal pend without reordering the pair.
type ringPath struct {
	rb  *ring
	dst *chanEndpoint

	mu        sync.Mutex
	pend      []Msg
	pendBytes int // encoded batch-part bytes of pend
	poisoned  bool

	// pendN mirrors len(pend) (maintained under mu, read without it):
	// a producer that sees 0 may enqueue straight onto the ring without
	// taking mu — there is nothing older to flush first. Seeing a stale
	// non-zero only costs the slow path.
	pendN atomic.Int32
}

// Coalescing bounds: only frames this small are batched, and a batch
// flushes (or the sender blocks) once it holds this many encoded
// bytes.
const (
	ringBatchMaxEach  = 4 << 10
	ringBatchMaxBytes = 64 << 10
)

func (ep *chanEndpoint) Addr() Addr          { return ep.addr }
func (ep *chanEndpoint) Recv() <-chan Msg    { return ep.inbox }
func (ep *chanEndpoint) Accept() <-chan Conn { return ep.accept }

func (ep *chanEndpoint) isDead() bool {
	select {
	case <-ep.dead:
		return true
	default:
		return false
	}
}

// Send delivers m to 'to'. Messages to dead or unknown endpoints are
// dropped silently (PSM semantics); a full destination inbox (or
// ring) blocks until space, destination death, or sender death.
//
// MPI eager-send semantics: the caller may reuse its buffer as soon as
// Send returns, so the payload is copied here (on a real interconnect
// the NIC has DMA'd the eager buffer by then).
func (ep *chanEndpoint) Send(to Addr, m Msg) error {
	if ep.isDead() {
		return ErrClosed
	}
	if rp := ep.ringTo(to); rp != nil {
		return ep.ringSend(rp, m)
	}
	dst := ep.net.lookup(to)
	if dst == nil || dst.isDead() {
		return nil // silent drop
	}
	if len(m.Data) > 0 {
		cp := ep.net.opts.Pool.Get(len(m.Data))
		copy(cp, m.Data)
		m.Data = cp
		m.pool = ep.net.opts.Pool
	}
	if ep.delayQ != nil {
		// Simulated wire latency: queue for delivery MsgDelay from now.
		// One goroutine drains the queue in send order, so per-pair
		// FIFO is preserved and a burst of sends pipelines (all arrive
		// ~MsgDelay later) instead of serialising.
		select {
		case ep.delayQ <- delayedMsg{dst: dst, m: m, due: time.Now().Add(ep.net.opts.MsgDelay)}:
			return nil
		case <-ep.dead:
			m.Release()
			return ErrClosed
		}
	}
	return ep.deliver(dst, m)
}

// ringTo resolves the ring path for sends to 'to'; nil means use the
// channel path. The verdict is cached per destination so the hot path
// is one sync.Map load. An unknown destination is not cached (it may
// simply not have registered yet); a cross-node one is.
func (ep *chanEndpoint) ringTo(to Addr) *ringPath {
	if ep.ringBell == nil {
		return nil
	}
	if v, ok := ep.ringOut.Load(to); ok {
		return v.(*ringPath)
	}
	dst := ep.net.lookup(to)
	if dst == nil {
		return nil
	}
	if dst.node != ep.node || dst.ringBell == nil {
		ep.ringOut.Store(to, (*ringPath)(nil))
		return nil
	}
	rp := dst.inRing(ep.addr)
	if rp == nil {
		return nil // dst died during setup; next send re-resolves
	}
	actual, _ := ep.ringOut.LoadOrStore(to, rp)
	return actual.(*ringPath)
}

// inRing returns (creating on first use) the inbound ring for frames
// from src. Receiver-side registration keyed by sender address makes
// the pair's ring unique even if two of the sender's goroutines race
// the first send.
func (ep *chanEndpoint) inRing(src Addr) *ringPath {
	ep.ringMu.Lock()
	defer ep.ringMu.Unlock()
	if ep.isDead() {
		return nil
	}
	if rp, ok := ep.ringSrc[src]; ok {
		return rp
	}
	if ep.ringSrc == nil {
		ep.ringSrc = make(map[Addr]*ringPath)
	}
	rp := &ringPath{rb: newRing(ep.net.opts.ringSlots()), dst: ep}
	ep.ringSrc[src] = rp
	ep.ringIn = append(ep.ringIn, rp)
	// Publish the grown path list for lock-free pumps. A pump holding
	// the previous snapshot misses only this just-created (still empty)
	// ring; its first publish raises ringPend, which keeps pumps coming
	// until one holds a snapshot that includes it.
	snap := ep.ringIn
	ep.ringInP.Store(&snap)
	return rp
}

// ringSend publishes m on the pair's ring, coalescing into the
// overflow batch when the ring is full. rp.mu serialises the slow
// path's producers on the pair; the fast path below rides on the
// ring's own slot CAS and poison re-check instead.
func (ep *chanEndpoint) ringSend(rp *ringPath, m Msg) error {
	if len(m.Data) > 0 {
		cp := ep.net.opts.Pool.Get(len(m.Data))
		copy(cp, m.Data)
		m.Data = cp
		m.pool = ep.net.opts.Pool
	}
	dst := rp.dst
	// Fast path: no overflow batch queued ahead of us, ring has room.
	// enqueue is safe without rp.mu — slots are claimed by CAS, and a
	// poison racing the publish makes the producer self-drain — and
	// per-pair FIFO holds because a non-empty pend forces the slow
	// path, which flushes pend into the ring first.
	if rp.pendN.Load() == 0 && rp.rb.enqueue(m) {
		dst.ringPend.Add(1)
		dst.wakeWaiter()
		return nil
	}
	coalesce := !ep.net.opts.DisableCoalesce
	for {
		rp.mu.Lock()
		if rp.poisoned {
			rp.mu.Unlock()
			m.Release()
			return nil // silent drop: peer dead
		}
		// FIFO: anything coalesced earlier must reach the ring first.
		if rp.flushLocked() && rp.rb.enqueue(m) {
			dst.ringPend.Add(1)
			rp.mu.Unlock()
			dst.wakeWaiter()
			return nil
		}
		// Ring backed up: batch small frames instead of blocking.
		if coalesce && len(m.Data) <= ringBatchMaxEach && rp.pendBytes < ringBatchMaxBytes {
			rp.pend = append(rp.pend, m)
			rp.pendBytes += batchFrameLen(&m)
			rp.pendN.Store(int32(len(rp.pend)))
			dst.ringPend.Add(1)
			rp.mu.Unlock()
			dst.wakeWaiter()
			return nil
		}
		rp.mu.Unlock()
		select {
		case <-rp.rb.space:
		case <-dst.dead:
			m.Release()
			return nil
		case <-ep.dead:
			m.Release()
			return ErrClosed
		}
	}
}

// flushLocked moves the overflow batch into the ring as one KindBatch
// frame (or directly, for a lone frame). Caller holds rp.mu. Returns
// false when the ring still has no room; pend is untouched then.
func (rp *ringPath) flushLocked() bool {
	if len(rp.pend) == 0 {
		return true
	}
	if !rp.rb.hasSpace() {
		return false
	}
	if len(rp.pend) == 1 {
		if !rp.rb.enqueue(rp.pend[0]) {
			return false
		}
		// One pend entry became one ring slot: ringPend unchanged.
	} else {
		pool := rp.dst.net.opts.Pool
		buf := pool.Get(enc.BatchHeaderLen + rp.pendBytes)
		buf = enc.AppendBatchHeader(buf[:0], len(rp.pend))
		for i := range rp.pend {
			buf = appendBatchFrame(buf, &rp.pend[i])
		}
		if !rp.rb.enqueue(Msg{Kind: KindBatch, Data: buf, pool: pool}) {
			pool.Put(buf)
			return false
		}
		for i := range rp.pend {
			rp.pend[i].Release()
		}
		rp.dst.ringPend.Add(1 - int64(len(rp.pend)))
	}
	for i := range rp.pend {
		rp.pend[i] = Msg{}
	}
	rp.pend = rp.pend[:0]
	rp.pendBytes = 0
	rp.pendN.Store(0)
	return true
}

// tapBell wakes the ring consumer (the matcher's demux watches it for
// traffic arriving while every receiver is parked). Non-blocking.
func (ep *chanEndpoint) tapBell() {
	select {
	case ep.ringBell <- struct{}{}:
	default:
	}
}

// wakeWaiter taps the bell only when a receiver is parked (or about to
// park) on a match. An active receiver pumps its rings inline on every
// receive call, so an unconditional tap would wake the demux once per
// message just to contend for locks. The handshake is Dekker-style:
// the receiver increments ringWait and then pumps once more before
// parking, so a producer that reads ringWait == 0 published its frame
// where that final pump must see it.
func (ep *chanEndpoint) wakeWaiter() {
	if ep.ringWait.Load() != 0 {
		ep.tapBell()
	}
}

// AddRingWaiter implements RingIngress: the matcher brackets every
// blocking wait with +1/-1 so producers know whether a bell tap is
// needed. The caller must pump after incrementing and before parking.
func (ep *chanEndpoint) AddRingWaiter(delta int32) {
	ep.ringWait.Add(delta)
}

// RingBell implements RingIngress; nil for unplaced endpoints.
func (ep *chanEndpoint) RingBell() <-chan struct{} {
	if ep.ringBell == nil {
		return nil
	}
	return ep.ringBell
}

// PumpRings drains every inbound ring into fn in per-pair FIFO order:
// for each pair, the ring first, then the stolen overflow batch
// (strictly newer than the ring's contents). Returns false when
// another pump holds the drain — that pump delivers the frames.
func (ep *chanEndpoint) PumpRings(fn func(Msg)) bool {
	if ep.ringPend.Load() == 0 {
		return true
	}
	if !ep.drainMu.TryLock() {
		return false
	}
	snap := ep.ringInP.Load()
	if snap == nil {
		ep.drainMu.Unlock()
		return true
	}
	for _, rp := range *snap {
		if n := rp.rb.drain(fn); n > 0 {
			ep.ringPend.Add(-int64(n))
			rp.rb.signalSpace()
		}
		if rp.pendN.Load() == 0 {
			continue
		}
		rp.mu.Lock()
		stolen := rp.pend
		rp.pend = nil
		rp.pendBytes = 0
		rp.pendN.Store(0)
		rp.mu.Unlock()
		if len(stolen) > 0 {
			ep.ringPend.Add(-int64(len(stolen)))
			for _, m := range stolen {
				fn(m)
			}
		}
	}
	ep.drainMu.Unlock()
	return true
}

// FlushBarrier implements Flusher: it pushes every destination's
// pending overflow batch into its ring so an epoch fence never
// strands coalesced frames behind the fence. Bounded by a short
// timeout — a wedged receiver cannot stall the fence (its ring
// contents are about to be stale-dropped anyway).
func (ep *chanEndpoint) FlushBarrier() {
	if ep.ringBell == nil {
		return
	}
	deadline := time.Now().Add(100 * time.Millisecond)
	ep.ringOut.Range(func(_, v any) bool {
		rp := v.(*ringPath)
		if rp == nil {
			return true
		}
		for {
			rp.mu.Lock()
			done := rp.poisoned || rp.flushLocked()
			rp.mu.Unlock()
			if done {
				rp.dst.tapBell()
				return true
			}
			if time.Now().After(deadline) {
				return false
			}
			select {
			case <-rp.rb.space:
			case <-rp.dst.dead:
				return true
			case <-ep.dead:
				return false
			case <-time.After(time.Millisecond):
			}
		}
	})
}

// deliver pushes m into dst's inbox, blocking only when it is full.
func (ep *chanEndpoint) deliver(dst *chanEndpoint, m Msg) error {
	select {
	case dst.inbox <- m:
		return nil
	default:
	}
	// Inbox full: block, but wake on either side dying.
	select {
	case dst.inbox <- m:
		return nil
	case <-dst.dead:
		m.Release() // peer died; drop and recycle the frame copy
		return nil
	case <-ep.dead:
		m.Release()
		return ErrClosed
	}
}

// delayedMsg is one in-flight message waiting out the simulated wire
// latency.
type delayedMsg struct {
	dst *chanEndpoint
	m   Msg
	due time.Time
}

// delayLoop delivers queued messages once their latency has elapsed.
// Deadlines are monotone in queue order (every message waits the same
// MsgDelay), so waiting on the head never delays a message behind it.
func (ep *chanEndpoint) delayLoop() {
	timer := time.NewTimer(0)
	defer timer.Stop()
	for {
		select {
		case dm := <-ep.delayQ:
			if d := time.Until(dm.due); d > 0 {
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
				timer.Reset(d)
				select {
				case <-timer.C:
				case <-ep.dead:
					dm.m.Release()
					ep.drainDelayQ()
					return
				}
			}
			ep.deliver(dm.dst, dm.m)
		case <-ep.dead:
			ep.drainDelayQ()
			return
		}
	}
}

// drainDelayQ recycles frames stranded in the latency queue when the
// endpoint dies (they were lost on the wire; PSM drops them silently,
// we just hand the copies back to the arena).
func (ep *chanEndpoint) drainDelayQ() {
	for {
		select {
		case dm := <-ep.delayQ:
			dm.m.Release()
		default:
			return
		}
	}
}

// Connect establishes a monitored connection to peer.
func (ep *chanEndpoint) Connect(peer Addr) (Conn, error) {
	if ep.isDead() {
		return nil, ErrClosed
	}
	dst := ep.net.lookup(peer)
	if dst == nil || dst.isDead() {
		return nil, ErrUnreachable
	}
	local := &chanConnEnd{local: ep.addr, remote: peer, closed: make(chan struct{}), opts: ep.net.opts}
	remote := &chanConnEnd{local: peer, remote: ep.addr, closed: make(chan struct{}), opts: ep.net.opts}
	local.peer, remote.peer = remote, local

	ep.addConn(local)
	if !dst.addConn(remote) {
		// Peer died in the window; report unreachable.
		local.fire(0)
		return nil, ErrUnreachable
	}
	select {
	case dst.accept <- remote:
	case <-dst.dead:
		local.fire(0)
		return nil, ErrUnreachable
	}
	return local, nil
}

func (ep *chanEndpoint) addConn(c *chanConnEnd) bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.isDead() {
		return false
	}
	ep.conns = append(ep.conns, c)
	return true
}

// Close shuts down gracefully: peers observe conn closes after
// PropDelay.
func (ep *chanEndpoint) Close() error {
	ep.shutdown(ep.net.opts.PropDelay)
	return nil
}

// kill is abrupt death: peers observe conn closes after DetectDelay.
func (ep *chanEndpoint) kill() {
	ep.shutdown(ep.net.opts.DetectDelay)
}

func (ep *chanEndpoint) shutdown(remoteDelay time.Duration) {
	ep.deadOnce.Do(func() {
		ep.mu.Lock()
		close(ep.dead)
		conns := ep.conns
		ep.conns = nil
		ep.mu.Unlock()
		ep.net.remove(ep.addr)
		ep.poisonRings()
		for _, c := range conns {
			c.fire(0)                // local side sees it immediately
			c.peer.fire(remoteDelay) // remote observes after delay
		}
	})
}

// poisonRings tears down the inbound rings on death: pending overflow
// batches are recycled under each path's lock (stopping producers from
// appending more), then each ring is poisoned and drained. In-flight
// producers that published concurrently re-check the poison flag and
// self-drain, so no pooled payload is stranded in a dead ring.
func (ep *chanEndpoint) poisonRings() {
	ep.ringMu.Lock()
	paths := ep.ringIn
	ep.ringIn = nil
	ep.ringSrc = nil
	ep.ringInP.Store(nil)
	ep.ringMu.Unlock()
	for _, rp := range paths {
		rp.mu.Lock()
		rp.poisoned = true
		for i := range rp.pend {
			rp.pend[i].Release()
			rp.pend[i] = Msg{}
		}
		rp.pend = nil
		rp.pendBytes = 0
		rp.pendN.Store(0)
		rp.mu.Unlock()
		rp.rb.poison()
	}
}

// chanConnEnd is one side of a monitored connection.
type chanConnEnd struct {
	local, remote Addr
	peer          *chanConnEnd
	opts          Options

	once   sync.Once
	closed chan struct{}
}

func (c *chanConnEnd) Local() Addr             { return c.local }
func (c *chanConnEnd) Remote() Addr            { return c.remote }
func (c *chanConnEnd) Closed() <-chan struct{} { return c.closed }

// Close tears the connection down; the remote side observes it after
// PropDelay (this is the log-ring propagation mechanism).
func (c *chanConnEnd) Close() error {
	c.fire(0)
	c.peer.fire(c.opts.PropDelay)
	return nil
}

func (c *chanConnEnd) fire(after time.Duration) {
	c.once.Do(func() {
		if after <= 0 {
			close(c.closed)
			return
		}
		time.AfterFunc(after, func() { close(c.closed) })
	})
}
