package transport

import "sync/atomic"

// ring is the per-(sender, receiver) lock-free queue behind
// ChanNetwork's intra-node fast path: a fixed power-of-two slot array
// with per-slot sequence counters (Vyukov's bounded queue) and padded
// head/tail cursors so the producer and consumer never share a cache
// line. Slots carry whole Msg values whose payloads are bufpool
// copies, so a slot's ownership contract is the arena's: the producer
// Gets at enqueue, whoever dequeues Releases (or hands the frame on).
//
// The common case is strict SPSC — one rank sending, its co-located
// peer draining — but the sequence counters keep the queue safe when
// extra parties touch it: a message-log replay enqueues from its own
// goroutine, and the poison protocol below makes the producer and the
// dying endpoint race to drain the same slots.
type ring struct {
	mask  uint64
	slots []ringSlot

	_        [56]byte // keep the cursors on separate cache lines
	head     atomic.Uint64
	_        [56]byte
	tail     atomic.Uint64
	_        [56]byte
	poisoned atomic.Bool

	// space carries "the consumer made room" wakeups to producers
	// blocked on a full ring; capacity 1 so a signal sent between a
	// producer's full-check and its park is not lost.
	space chan struct{}
}

// defaultRingSlots is the per-pair ring capacity; small enough that a
// ring per co-located pair stays cheap, large enough that a bursty
// sender overflows into the coalescing batch instead of blocking.
const defaultRingSlots = 256

type ringSlot struct {
	seq atomic.Uint64
	m   Msg
}

// newRing creates a ring with capacity rounded up to a power of two.
func newRing(capacity int) *ring {
	n := 2
	for n < capacity {
		n <<= 1
	}
	r := &ring{
		mask:  uint64(n - 1),
		slots: make([]ringSlot, n),
		space: make(chan struct{}, 1),
	}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// enqueue publishes m; it returns false when the ring is full or
// poisoned (the caller still owns m in that case). If the ring is
// poisoned between the slot claim and the publish, the producer
// itself drains the ring — the dying endpoint's drain pass may
// already have run past the half-written slot — so no frame is ever
// stranded in a dead ring. In that case enqueue still returns true:
// the message was accepted and then dropped, which to the sender is
// indistinguishable from a send to a dead peer (PSM semantics).
func (r *ring) enqueue(m Msg) bool {
	if r.poisoned.Load() {
		return false
	}
	for {
		pos := r.tail.Load()
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		if seq == pos {
			if r.tail.CompareAndSwap(pos, pos+1) {
				s.m = m
				s.seq.Store(pos + 1)
				if r.poisoned.Load() {
					r.drain(releaseMsg)
				}
				return true
			}
		} else if seq < pos {
			return false // full
		}
		// seq > pos: another producer advanced tail under us; retry.
	}
}

// dequeue takes the oldest message; ok is false when the ring is
// empty. Safe for concurrent dequeuers (the pump and a poison drain
// can overlap).
func (r *ring) dequeue() (Msg, bool) {
	for {
		pos := r.head.Load()
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		if seq == pos+1 {
			if r.head.CompareAndSwap(pos, pos+1) {
				m := s.m
				s.m = Msg{}
				s.seq.Store(pos + r.mask + 1)
				return m, true
			}
		} else if seq <= pos {
			return Msg{}, false // empty (or the next slot is mid-publish)
		}
	}
}

// hasSpace reports whether an enqueue would currently find a free
// slot. Advisory: with a concurrent consumer the answer can only get
// more permissive.
func (r *ring) hasSpace() bool {
	pos := r.tail.Load()
	return r.slots[pos&r.mask].seq.Load() == pos
}

// signalSpace wakes one producer blocked on a full ring. Non-blocking;
// the 1-slot buffer latches the wakeup.
func (r *ring) signalSpace() {
	select {
	case r.space <- struct{}{}:
	default:
	}
}

// poison marks the ring dead and drains every published frame back to
// its arena. Called by the receiving endpoint's shutdown; combined
// with the producer-side re-check in enqueue, every pooled payload in
// the ring is released exactly once.
func (r *ring) poison() {
	r.poisoned.Store(true)
	r.drain(releaseMsg)
	r.signalSpace() // unblock a producer parked on a full dead ring
}

// drain dequeues until empty, handing each frame to fn.
func (r *ring) drain(fn func(Msg)) int {
	n := 0
	for {
		m, ok := r.dequeue()
		if !ok {
			return n
		}
		n++
		fn(m)
	}
}

func releaseMsg(m Msg) { m.Release() }
