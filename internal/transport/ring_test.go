package transport

import (
	"runtime"
	"sync"
	"testing"

	"fmi/internal/bufpool"
)

// TestRingFIFOWithWrapAround pushes several times the ring's capacity
// through a small ring, draining in lockstep, so the head/tail cursors
// wrap the slot array many times. Order must be preserved throughout.
func TestRingFIFOWithWrapAround(t *testing.T) {
	r := newRing(8)
	next := int32(0)
	for round := 0; round < 10; round++ {
		for i := 0; i < 5; i++ {
			if !r.enqueue(Msg{Tag: int32(round*5 + i)}) {
				t.Fatalf("round %d: enqueue %d refused", round, i)
			}
		}
		for i := 0; i < 5; i++ {
			m, ok := r.dequeue()
			if !ok {
				t.Fatalf("round %d: dequeue %d found empty ring", round, i)
			}
			if m.Tag != next {
				t.Fatalf("round %d: got tag %d, want %d", round, m.Tag, next)
			}
			next++
		}
	}
}

// TestRingFullAndEmptyBoundaries exercises the two boundary states:
// an empty ring refuses dequeue, a full ring refuses enqueue, and one
// slot freed / one slot filled flips each verdict back.
func TestRingFullAndEmptyBoundaries(t *testing.T) {
	r := newRing(4)
	if _, ok := r.dequeue(); ok {
		t.Fatal("dequeue on empty ring succeeded")
	}
	if r.hasSpace() != true {
		t.Fatal("fresh ring reports no space")
	}
	for i := 0; i < 4; i++ {
		if !r.enqueue(Msg{Tag: int32(i)}) {
			t.Fatalf("enqueue %d refused below capacity", i)
		}
	}
	if r.enqueue(Msg{Tag: 99}) {
		t.Fatal("enqueue on full ring succeeded")
	}
	if r.hasSpace() {
		t.Fatal("full ring reports space")
	}
	if m, ok := r.dequeue(); !ok || m.Tag != 0 {
		t.Fatalf("dequeue after full = (%v, %v), want tag 0", m.Tag, ok)
	}
	if !r.hasSpace() {
		t.Fatal("ring with one free slot reports no space")
	}
	if !r.enqueue(Msg{Tag: 4}) {
		t.Fatal("enqueue refused after a slot was freed")
	}
	for want := int32(1); want <= 4; want++ {
		m, ok := r.dequeue()
		if !ok || m.Tag != want {
			t.Fatalf("drain: got (%d, %v), want %d", m.Tag, ok, want)
		}
	}
	if _, ok := r.dequeue(); ok {
		t.Fatal("dequeue on drained ring succeeded")
	}
}

// TestRingCapacityRoundsUp verifies the power-of-two rounding: a ring
// asked for 5 slots must hold at least 5 before refusing.
func TestRingCapacityRoundsUp(t *testing.T) {
	r := newRing(5)
	n := 0
	for r.enqueue(Msg{Tag: int32(n)}) {
		n++
		if n > 64 {
			t.Fatal("ring never filled")
		}
	}
	if n != 8 {
		t.Fatalf("capacity %d, want 8 (5 rounded up)", n)
	}
}

// TestRingConcurrentSPSC streams a large sequence through a small ring
// with a producer and a consumer on separate goroutines (run under
// -race this doubles as the memory-ordering proof for the seq-counter
// protocol). The consumer must observe every tag exactly once, in
// order, with enqueue-full and dequeue-empty backoff in play.
func TestRingConcurrentSPSC(t *testing.T) {
	total := 200000
	if raceEnabled {
		total = 20000 // the detector makes each atomic op ~50x slower
	}
	r := newRing(16)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; {
			if r.enqueue(Msg{Tag: int32(i)}) {
				i++
			} else {
				runtime.Gosched() // full: let the consumer run
			}
		}
	}()
	for want := 0; want < total; {
		m, ok := r.dequeue()
		if !ok {
			runtime.Gosched() // empty: let the producer run
			continue
		}
		if m.Tag != int32(want) {
			t.Fatalf("got tag %d, want %d", m.Tag, want)
		}
		want++
	}
	wg.Wait()
	if _, ok := r.dequeue(); ok {
		t.Fatal("ring not empty after consuming every message")
	}
}

// TestRingPoisonReleasesFrames checks the shutdown contract: poisoning
// drains published frames exactly once, refuses new publishes, and a
// producer racing the poison self-drains (enqueue still reports
// acceptance — to the sender a dead peer looks like a silent drop).
func TestRingPoisonReleasesFrames(t *testing.T) {
	arena := bufpool.NewDebug()
	r := newRing(8)
	for i := 0; i < 3; i++ {
		r.enqueue(Msg{Data: arena.Get(64), pool: arena})
	}
	r.poison()
	if got := arena.Outstanding(); got != 0 {
		t.Fatalf("%d frames still outstanding after poison", got)
	}
	if r.enqueue(Msg{Tag: 1}) {
		t.Fatal("enqueue accepted on a poisoned ring")
	}
	if _, ok := r.dequeue(); ok {
		t.Fatal("poisoned ring still holds frames")
	}
}
