package transport

import (
	"bufio"
	"io"
)

// Small indirections so tests can exercise the frame codec without a
// socket.
func newTestWriter(w io.Writer) *bufio.Writer { return bufio.NewWriter(w) }
func newTestReader(r io.Reader) *bufio.Reader { return bufio.NewReader(r) }
