package transport

import (
	"bufio"
	"io"
)

// Small indirections so tests can exercise the frame codec without a
// socket.
func newTestWriter(w io.Writer) *bufio.Writer { return bufio.NewWriter(w) }
func newTestReader(r io.Reader) *bufio.Reader { return bufio.NewReader(r) }

// queuedLen reports the matcher's internal queue depths summed across
// lanes (test observability).
func (m *Matcher) queuedLen() (unexpected, future int) {
	t := m.lockAll()
	for _, ln := range t.bySrc {
		unexpected += len(ln.unexpected)
		future += len(ln.future)
	}
	unexpected += len(t.misc.unexpected)
	future += len(t.misc.future)
	m.unlockAll(t)
	return unexpected, future
}
