package transport

import (
	"errors"
	"sync"
)

// Matching wildcards.
const (
	AnySource int32 = -1
	AnyTag    int32 = -0x40000000 // outside both user and runtime tag ranges
)

// Matcher errors.
var (
	ErrMatcherClosed = errors.New("transport: matcher closed")
	ErrCancelled     = errors.New("transport: receive cancelled")
)

// Matcher implements MPI-style message matching on top of an Endpoint:
// receives are matched against (ctx, src, tag) with wildcard source and
// tag, messages that arrive before a matching receive is posted wait in
// an unexpected-message queue, and matching preserves arrival order
// (non-overtaking per (src, tag, ctx)).
//
// The Matcher also enforces the paper's epoch rule (§IV-D): messages
// from an older epoch than the current one are discarded silently;
// messages from a *newer* epoch (possible in the instant between a
// peer finishing recovery and this process bumping its own epoch) are
// buffered and delivered after the epoch advances.
type Matcher struct {
	ep Endpoint

	mu         sync.Mutex
	epoch      uint32
	unexpected []Msg
	pending    []*recvReq
	future     []Msg
	closed     bool
	closeCh    chan struct{}

	// stats
	delivered, dropped uint64
}

type recvReq struct {
	ctx       uint32
	src, tag  int32
	reply     chan Msg
	cancelled bool
}

// NewMatcher creates a matcher over ep and starts its demux goroutine.
func NewMatcher(ep Endpoint) *Matcher {
	m := &Matcher{ep: ep, closeCh: make(chan struct{})}
	go m.demux()
	return m
}

func (m *Matcher) demux() {
	for {
		select {
		case msg, ok := <-m.ep.Recv():
			if !ok {
				m.Close()
				return
			}
			m.deliver(msg)
		case <-m.closeCh:
			return
		}
	}
}

func (m *Matcher) deliver(msg Msg) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	switch {
	case msg.Epoch < m.epoch:
		m.dropped++
		m.mu.Unlock()
		return // stale epoch: discard (paper §IV-D)
	case msg.Epoch > m.epoch:
		m.future = append(m.future, msg)
		m.mu.Unlock()
		return
	}
	m.matchOrQueueLocked(msg)
	m.mu.Unlock()
}

// matchOrQueueLocked hands msg to the earliest matching pending
// receive, or queues it as unexpected.
func (m *Matcher) matchOrQueueLocked(msg Msg) {
	for i, req := range m.pending {
		if req.cancelled {
			continue
		}
		if reqMatches(req, msg) {
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			m.delivered++
			req.reply <- msg
			return
		}
	}
	m.unexpected = append(m.unexpected, msg)
}

func reqMatches(req *recvReq, msg Msg) bool {
	return req.ctx == msg.Ctx &&
		(req.src == AnySource || req.src == msg.Src) &&
		(req.tag == AnyTag || req.tag == msg.Tag)
}

// Pending is a posted receive awaiting its match. MPI semantics:
// receives match arriving messages in the order they were *posted*, so
// nonblocking receives must post synchronously (PostRecv) and may
// await later.
type Pending struct {
	m       *Matcher
	req     *recvReq
	matched Msg
	done    bool
}

// PostRecv registers a receive for (ctx, src, tag); matching order
// follows posting order. The returned Pending must be Awaited.
func (m *Matcher) PostRecv(ctx uint32, src, tag int32) (*Pending, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrMatcherClosed
	}
	req := &recvReq{ctx: ctx, src: src, tag: tag}
	// Check the unexpected queue first (earliest arrival wins).
	for i, msg := range m.unexpected {
		if reqMatches(req, msg) {
			m.unexpected = append(m.unexpected[:i], m.unexpected[i+1:]...)
			m.delivered++
			m.mu.Unlock()
			return &Pending{m: m, matched: msg, done: true}, nil
		}
	}
	req.reply = make(chan Msg, 1)
	m.pending = append(m.pending, req)
	m.mu.Unlock()
	return &Pending{m: m, req: req}, nil
}

// Await blocks until the posted receive matches, the cancel channel
// fires, or the matcher closes.
func (p *Pending) Await(cancel <-chan struct{}) (Msg, error) {
	if p.done {
		return p.matched, nil
	}
	m := p.m
	select {
	case msg := <-p.req.reply:
		return msg, nil
	case <-cancel:
		m.mu.Lock()
		p.req.cancelled = true
		// The demux may have matched concurrently; prefer the message.
		select {
		case msg := <-p.req.reply:
			m.mu.Unlock()
			return msg, nil
		default:
		}
		m.mu.Unlock()
		return Msg{}, ErrCancelled
	case <-m.closeCh:
		return Msg{}, ErrMatcherClosed
	}
}

// Recv blocks until a message matching (ctx, src, tag) arrives, the
// cancel channel fires, or the matcher closes. src may be AnySource
// and tag may be AnyTag.
func (m *Matcher) Recv(ctx uint32, src, tag int32, cancel <-chan struct{}) (Msg, error) {
	p, err := m.PostRecv(ctx, src, tag)
	if err != nil {
		return Msg{}, err
	}
	return p.Await(cancel)
}

// TryRecv performs a non-blocking matched receive from the unexpected
// queue (an MPI_Iprobe+Recv analogue).
func (m *Matcher) TryRecv(ctx uint32, src, tag int32) (Msg, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	req := &recvReq{ctx: ctx, src: src, tag: tag}
	for i, msg := range m.unexpected {
		if reqMatches(req, msg) {
			m.unexpected = append(m.unexpected[:i], m.unexpected[i+1:]...)
			m.delivered++
			return msg, true
		}
	}
	return Msg{}, false
}

// Epoch returns the current epoch.
func (m *Matcher) Epoch() uint32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// AdvanceEpoch moves the matcher to epoch e: queued messages older
// than e are discarded (including everything currently unexpected from
// previous epochs) and buffered future messages at exactly e are
// re-delivered.
func (m *Matcher) AdvanceEpoch(e uint32) {
	m.mu.Lock()
	if e <= m.epoch {
		m.mu.Unlock()
		return
	}
	m.epoch = e
	// All unexpected messages necessarily have epoch < e: discard.
	m.dropped += uint64(len(m.unexpected))
	m.unexpected = nil
	flush := m.future
	m.future = nil
	var still []Msg
	for _, msg := range flush {
		switch {
		case msg.Epoch < e:
			m.dropped++
		case msg.Epoch > e:
			still = append(still, msg)
		default:
			m.matchOrQueueLocked(msg)
		}
	}
	m.future = still
	m.mu.Unlock()
}

// Stats returns (delivered, dropped) message counts.
func (m *Matcher) Stats() (delivered, dropped uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.delivered, m.dropped
}

// Close shuts the matcher down; blocked receives return
// ErrMatcherClosed.
func (m *Matcher) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	close(m.closeCh)
	m.mu.Unlock()
}
