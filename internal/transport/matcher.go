package transport

import (
	"errors"
	"sync"
)

// Matching wildcards.
const (
	AnySource int32 = -1
	AnyTag    int32 = -0x40000000 // outside both user and runtime tag ranges
)

// Matcher errors.
var (
	ErrMatcherClosed = errors.New("transport: matcher closed")
	ErrCancelled     = errors.New("transport: receive cancelled")
)

// Matcher implements MPI-style message matching on top of an Endpoint:
// receives are matched against (ctx, src, tag) with wildcard source and
// tag, messages that arrive before a matching receive is posted wait in
// an unexpected-message queue, and matching preserves arrival order
// (non-overtaking per (src, tag, ctx)).
//
// The Matcher also enforces the paper's epoch rule (§IV-D): messages
// from an older epoch than the current one are discarded silently;
// messages from a *newer* epoch (possible in the instant between a
// peer finishing recovery and this process bumping its own epoch) are
// buffered and delivered after the epoch advances.
// In local recovery mode the Matcher additionally enforces duplicate
// suppression (EnableDedup): every sequenced message (Seq != 0) at or
// below the per-source ingress watermark is a duplicate — a re-sent
// copy from a replaying sender or a re-executed send from a respawned
// rank — and is counted and discarded.
type Matcher struct {
	ep Endpoint

	mu         sync.Mutex
	epoch      uint32
	view       uint64 // minimum acceptable membership view version (0 = no filtering)
	unexpected []Msg
	pending    []*recvReq
	future     []Msg
	closed     bool
	closeCh    chan struct{}

	// Duplicate suppression (local recovery mode).
	dedup bool
	seen  []uint64 // per-source highest sequenced message accepted

	// stats
	delivered, dropped, dupSuppressed uint64
}

type recvReq struct {
	ctx       uint32
	src, tag  int32
	reply     chan Msg
	cancelled bool
}

// NewMatcher creates a matcher over ep and starts its demux goroutine.
func NewMatcher(ep Endpoint) *Matcher {
	m := &Matcher{ep: ep, closeCh: make(chan struct{})}
	go m.demux()
	return m
}

func (m *Matcher) demux() {
	for {
		select {
		case msg, ok := <-m.ep.Recv():
			if !ok {
				m.Close()
				return
			}
			m.deliver(msg)
		case <-m.closeCh:
			return
		}
	}
}

func (m *Matcher) deliver(msg Msg) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	switch {
	case msg.Epoch < m.epoch:
		m.dropped++
		m.mu.Unlock()
		msg.Release() // stale epoch: discard (paper §IV-D)
		return
	case msg.Epoch > m.epoch:
		m.future = append(m.future, msg)
		m.mu.Unlock()
		return
	}
	m.matchOrQueueLocked(msg)
	m.mu.Unlock()
}

// matchOrQueueLocked applies duplicate suppression, then hands msg to
// the earliest matching pending receive or queues it as unexpected.
func (m *Matcher) matchOrQueueLocked(msg Msg) {
	if m.view != 0 && msg.View != 0 && msg.View < m.view {
		// Stamped under a membership view that has since been replaced:
		// the sender had not yet observed the view change. Epoch
		// filtering already excludes almost all such traffic (every view
		// change is an epoch fence); this is the defence in depth that
		// makes stale-view delivery structurally impossible.
		m.dropped++
		msg.Release()
		return
	}
	if m.dedup && msg.Seq != 0 {
		if int(msg.Src) < 0 || int(msg.Src) >= len(m.seen) {
			msg.Release() // malformed source on a sequenced message
			return
		}
		if msg.Seq <= m.seen[msg.Src] {
			m.dupSuppressed++
			msg.Release()
			return
		}
		m.seen[msg.Src] = msg.Seq
	}
	for i, req := range m.pending {
		if req.cancelled {
			continue
		}
		if reqMatches(req, msg) {
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			m.delivered++
			req.reply <- msg
			return
		}
	}
	m.unexpected = append(m.unexpected, msg)
}

func reqMatches(req *recvReq, msg Msg) bool {
	return req.ctx == msg.Ctx &&
		(req.src == AnySource || req.src == msg.Src) &&
		(req.tag == AnyTag || req.tag == msg.Tag)
}

// Pending is a posted receive awaiting its match. MPI semantics:
// receives match arriving messages in the order they were *posted*, so
// nonblocking receives must post synchronously (PostRecv) and may
// await later.
type Pending struct {
	m       *Matcher
	req     *recvReq
	matched Msg
	done    bool
}

// PostRecv registers a receive for (ctx, src, tag); matching order
// follows posting order. The returned Pending must be Awaited.
func (m *Matcher) PostRecv(ctx uint32, src, tag int32) (*Pending, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrMatcherClosed
	}
	req := &recvReq{ctx: ctx, src: src, tag: tag}
	// Check the unexpected queue first (earliest arrival wins).
	for i, msg := range m.unexpected {
		if reqMatches(req, msg) {
			m.unexpected = append(m.unexpected[:i], m.unexpected[i+1:]...)
			m.delivered++
			m.mu.Unlock()
			return &Pending{m: m, matched: msg, done: true}, nil
		}
	}
	req.reply = make(chan Msg, 1)
	m.pending = append(m.pending, req)
	m.mu.Unlock()
	return &Pending{m: m, req: req}, nil
}

// Await blocks until the posted receive matches, the cancel channel
// fires, or the matcher closes.
func (p *Pending) Await(cancel <-chan struct{}) (Msg, error) {
	if p.done {
		return p.matched, nil
	}
	m := p.m
	select {
	case msg := <-p.req.reply:
		return msg, nil
	case <-cancel:
		m.mu.Lock()
		p.req.cancelled = true
		// The demux may have matched concurrently; prefer the message.
		select {
		case msg := <-p.req.reply:
			m.mu.Unlock()
			return msg, nil
		default:
		}
		m.mu.Unlock()
		return Msg{}, ErrCancelled
	case <-m.closeCh:
		return Msg{}, ErrMatcherClosed
	}
}

// reqPool recycles posted-receive records — and their one-slot reply
// channels — for the blocking Recv fast path. A record is recycled
// only once it is provably unreferenced: matched (removed from pending
// by the demux) or cancelled (removed here under the lock, reply
// drained). The close path leaks its record to the GC instead:
// AdvanceEpoch does not check closed, so a recycled record could
// otherwise receive a stray late message.
var reqPool = sync.Pool{New: func() any { return &recvReq{reply: make(chan Msg, 1)} }}

// Recv blocks until a message matching (ctx, src, tag) arrives, the
// cancel channel fires, or the matcher closes. src may be AnySource
// and tag may be AnyTag. This is the runtime's innermost receive: it
// bypasses the Pending wrapper and reuses request records, so a
// matched receive performs no allocation.
func (m *Matcher) Recv(ctx uint32, src, tag int32, cancel <-chan struct{}) (Msg, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Msg{}, ErrMatcherClosed
	}
	probe := recvReq{ctx: ctx, src: src, tag: tag}
	for i, msg := range m.unexpected {
		if reqMatches(&probe, msg) {
			m.unexpected = append(m.unexpected[:i], m.unexpected[i+1:]...)
			m.delivered++
			m.mu.Unlock()
			return msg, nil
		}
	}
	req := reqPool.Get().(*recvReq)
	req.ctx, req.src, req.tag, req.cancelled = ctx, src, tag, false
	m.pending = append(m.pending, req)
	m.mu.Unlock()

	select {
	case msg := <-req.reply:
		reqPool.Put(req)
		return msg, nil
	case <-cancel:
		m.mu.Lock()
		for i, r := range m.pending {
			if r == req {
				m.pending = append(m.pending[:i], m.pending[i+1:]...)
				break
			}
		}
		// The demux may have matched concurrently (it sends under the
		// lock we now hold); prefer the message.
		select {
		case msg := <-req.reply:
			m.mu.Unlock()
			reqPool.Put(req)
			return msg, nil
		default:
		}
		m.mu.Unlock()
		reqPool.Put(req)
		return Msg{}, ErrCancelled
	case <-m.closeCh:
		return Msg{}, ErrMatcherClosed
	}
}

// TryRecv performs a non-blocking matched receive from the unexpected
// queue (an MPI_Iprobe+Recv analogue).
func (m *Matcher) TryRecv(ctx uint32, src, tag int32) (Msg, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	req := &recvReq{ctx: ctx, src: src, tag: tag}
	for i, msg := range m.unexpected {
		if reqMatches(req, msg) {
			m.unexpected = append(m.unexpected[:i], m.unexpected[i+1:]...)
			m.delivered++
			return msg, true
		}
	}
	return Msg{}, false
}

// Epoch returns the current epoch.
func (m *Matcher) Epoch() uint32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// AdvanceEpoch moves the matcher to epoch e: queued messages older
// than e are discarded (including everything currently unexpected from
// previous epochs) and buffered future messages at exactly e are
// re-delivered.
func (m *Matcher) AdvanceEpoch(e uint32) {
	// An epoch fence is an explicit flush boundary for batching
	// transports: everything queued for the old epoch goes to the wire
	// before we start filtering against the new one.
	if f, ok := m.ep.(Flusher); ok {
		f.FlushBarrier()
	}
	m.mu.Lock()
	if e <= m.epoch {
		m.mu.Unlock()
		return
	}
	m.epoch = e
	// All unexpected messages necessarily have epoch < e: discard.
	m.dropped += uint64(len(m.unexpected))
	for i := range m.unexpected {
		m.unexpected[i].Release()
	}
	m.unexpected = nil
	flush := m.future
	m.future = nil
	var still []Msg
	for _, msg := range flush {
		switch {
		case msg.Epoch < e:
			m.dropped++
			msg.Release()
		case msg.Epoch > e:
			still = append(still, msg)
		default:
			m.matchOrQueueLocked(msg)
		}
	}
	m.future = still
	m.mu.Unlock()
}

// AdvanceView raises the minimum acceptable membership view version:
// view-stamped messages below it are discarded on delivery. Like
// epochs, views only move forward. Messages already accepted (the
// unexpected queue, Inject carry-over) are unaffected — they were
// accepted under a view the receiver had installed at the time.
func (m *Matcher) AdvanceView(v uint64) {
	m.mu.Lock()
	if v > m.view {
		m.view = v
	}
	m.mu.Unlock()
}

// Stats returns (delivered, dropped, duplicate-suppressed) message
// counts. dropped counts stale-epoch discards (paper §IV-D);
// dupSuppressed counts sequenced duplicates discarded by local
// recovery's receive-side watermarks.
func (m *Matcher) Stats() (delivered, dropped, dupSuppressed uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.delivered, m.dropped, m.dupSuppressed
}

// EnableDedup switches on sequenced-duplicate suppression for a world
// of n ranks. Call before any sequenced traffic arrives.
func (m *Matcher) EnableDedup(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dedup = true
	if len(m.seen) != n {
		m.seen = make([]uint64, n)
	}
}

// SeedSeen adopts per-source ingress watermarks: state carried over
// from the previous generation's matcher on a survivor, or restored
// from the checkpointed receive state on a respawned rank. Watermarks
// only move forward.
func (m *Matcher) SeedSeen(seen []uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dedup {
		m.dedup = true
	}
	if len(m.seen) < len(seen) {
		grown := make([]uint64, len(seen))
		copy(grown, m.seen)
		m.seen = grown
	}
	for i, s := range seen {
		if s > m.seen[i] {
			m.seen[i] = s
		}
	}
}

// SeedSeenPurge adopts watermarks like SeedSeen and, under the same
// lock, drops queued sequenced messages at or below the new
// watermarks. A re-provisioned shadow uses this when applying its
// primary's state snapshot: any copies the shadow queued before the
// snapshot was taken are already inside it (the snapshot carries the
// primary's queue), so keeping them would deliver duplicates the
// moment the dedup filter's history jumps forward.
func (m *Matcher) SeedSeenPurge(seen []uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dedup {
		m.dedup = true
	}
	if len(m.seen) < len(seen) {
		grown := make([]uint64, len(seen))
		copy(grown, m.seen)
		m.seen = grown
	}
	for i, s := range seen {
		if s > m.seen[i] {
			m.seen[i] = s
		}
	}
	keep := m.unexpected[:0]
	for _, msg := range m.unexpected {
		if msg.Seq != 0 && int(msg.Src) >= 0 && int(msg.Src) < len(m.seen) && msg.Seq <= m.seen[msg.Src] {
			m.dupSuppressed++
			msg.Release()
		} else {
			keep = append(keep, msg)
		}
	}
	m.unexpected = keep
}

// SeenVector returns a copy of the per-source ingress watermarks: the
// highest sequenced message accepted from each source. During replay
// negotiation this is exactly the rank's "what I already have" vector.
func (m *Matcher) SeenVector() []uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]uint64, len(m.seen))
	copy(out, m.seen)
	return out
}

// ResetSeen zeroes the ingress watermarks and drops queued sequenced
// messages — used when a local-recovery run falls back to a global
// (level-2) rollback, after which every rank restarts its streams from
// scratch in lockstep.
func (m *Matcher) ResetSeen() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.seen {
		m.seen[i] = 0
	}
	keep := m.unexpected[:0]
	for _, msg := range m.unexpected {
		if msg.Seq == 0 {
			keep = append(keep, msg)
		} else {
			msg.Release()
		}
	}
	m.unexpected = keep
}

// Inject appends already-accepted messages to the unexpected queue,
// bypassing the epoch and duplicate filters (their sequence numbers
// are already covered by the seeded watermarks). Used to carry
// accepted-but-unconsumed messages across an epoch fence, and to
// restore a checkpointed queue on a respawned rank.
func (m *Matcher) Inject(msgs []Msg) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.unexpected = append(m.unexpected, msgs...)
}

// HarvestState snapshots the duplicate-suppression state for carry-over
// or checkpointing: the seen watermarks plus the sequenced
// (data-plane) messages accepted into the unexpected queue but not yet
// consumed. Unsequenced control messages and future-epoch buffers are
// excluded — the former are generation-private, the latter were never
// accepted (their sequence numbers are above the watermark, so a
// replay regenerates them). The returned messages have their replay
// flag cleared.
func (m *Matcher) HarvestState() (seen []uint64, queued []Msg) {
	m.mu.Lock()
	defer m.mu.Unlock()
	seen = make([]uint64, len(m.seen))
	copy(seen, m.seen)
	for _, msg := range m.unexpected {
		if msg.Seq == 0 {
			continue
		}
		msg.Flags &^= FlagReplay
		queued = append(queued, msg)
	}
	return seen, queued
}

// Close shuts the matcher down; blocked receives return
// ErrMatcherClosed.
func (m *Matcher) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	close(m.closeCh)
	m.mu.Unlock()
}
