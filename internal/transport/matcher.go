package transport

import (
	"errors"
	"sync"
	"sync/atomic"

	"fmi/internal/enc"
)

// Matching wildcards.
const (
	AnySource int32 = -1
	AnyTag    int32 = -0x40000000 // outside both user and runtime tag ranges
)

// Matcher errors.
var (
	ErrMatcherClosed = errors.New("transport: matcher closed")
	ErrCancelled     = errors.New("transport: receive cancelled")
)

// maxLaneSrc bounds the per-source lane table; a frame claiming a
// source beyond it is routed to the misc lane rather than allocating
// an attacker-sized table.
const maxLaneSrc = 1 << 16

// Matcher implements MPI-style message matching on top of an Endpoint:
// receives are matched against (ctx, src, tag) with wildcard source and
// tag, messages that arrive before a matching receive is posted wait in
// an unexpected-message queue, and matching preserves arrival order
// (non-overtaking per (src, tag, ctx)).
//
// Ingress is sharded into per-source lanes: each lane owns its
// source's unexpected queue, posted receives, future-epoch buffer,
// dedup watermark, and counters under its own lock, so concurrent
// senders stop serialising on one mutex. Posted receives carry a
// global posting ticket; a message matches the earliest-posted
// receive across its lane and the AnySource queue, preserving MPI's
// posting-order semantics. AnySource operations take the slow path:
// every lane locked in ascending rank order (misc last, then the
// AnySource queue lock), which both prevents lost wakeups and makes
// wildcard matching deterministic — the lowest-ranked source with a
// matching message wins, not whichever lane a map walk visits first.
//
// When the endpoint exposes per-pair rings (RingIngress), the Matcher
// is their consumer: every receive call pumps the rings inline before
// looking at its lane, and the demux goroutine watches the ring bell
// for traffic arriving while all receivers are parked.
//
// The Matcher also enforces the paper's epoch rule (§IV-D): messages
// from an older epoch than the current one are discarded silently;
// messages from a *newer* epoch (possible in the instant between a
// peer finishing recovery and this process bumping its own epoch) are
// buffered and delivered after the epoch advances.
// In local recovery mode the Matcher additionally enforces duplicate
// suppression (EnableDedup): every sequenced message (Seq != 0) at or
// below the per-source ingress watermark is a duplicate — a re-sent
// copy from a replaying sender or a re-executed send from a respawned
// rank — and is counted and discarded.
type Matcher struct {
	ep   Endpoint
	ri   RingIngress   // non-nil iff ep has ring ingress
	// ingestFn is m.ingest bound once: passing a fresh method value
	// to PumpRings would allocate a 16-byte closure per pump, and the
	// pump sits on the ring receive fast path.
	ingestFn func(Msg)
	bell <-chan struct{}

	// growMu orders lane-table growth and the AnySource lock-all
	// path; lanes is the atomically-published table so the per-source
	// fast path is one load plus one index.
	growMu sync.Mutex
	lanes  atomic.Pointer[laneTable]

	// anyMu guards the AnySource posted queue. Lock order: growMu ->
	// lane locks in ascending rank order -> misc -> anyMu; ingress
	// takes a single lane lock before anyMu, which nests consistently.
	anyMu   sync.Mutex
	anyPend []*recvReq
	anyN    atomic.Int32 // len(anyPend), for a lock-free empty check

	postSeq atomic.Uint64 // posting-order tickets
	epoch   atomic.Uint32
	view    atomic.Uint64 // minimum acceptable membership view (0 = off)
	dedup   atomic.Bool
	dedupN  atomic.Int64 // world size of the seen vector
	closed  atomic.Bool
	closeCh chan struct{}
}

// laneTable is the immutable published lane set: bySrc[i] handles
// source rank i, misc handles negative and out-of-range sources
// (runtime-internal traffic). Growth copies the table.
type laneTable struct {
	bySrc []*lane
	misc  *lane
}

// lane is one source's ingress shard.
type lane struct {
	mu         sync.Mutex
	unexpected []Msg // arrival-order queue; the live window is [unHead:]
	unHead     int   // consumed prefix length: FIFO pops advance it instead of shifting the slice
	pending    []*recvReq
	future     []Msg
	seen       uint64 // highest sequenced message accepted (dedup watermark)

	delivered, dropped, dupSuppressed uint64
}

// unx returns the live unexpected window. Caller holds mu.
func (ln *lane) unx() []Msg { return ln.unexpected[ln.unHead:] }

// pushUnx appends msg to the unexpected queue, compacting the consumed
// prefix first when append would otherwise grow the backing array to
// hold dead slots. Caller holds mu.
func (ln *lane) pushUnx(msg Msg) {
	if ln.unHead > 0 && len(ln.unexpected) == cap(ln.unexpected) {
		n := copy(ln.unexpected, ln.unexpected[ln.unHead:])
		clearMsgs(ln.unexpected[n:])
		ln.unexpected = ln.unexpected[:n]
		ln.unHead = 0
	}
	ln.unexpected = append(ln.unexpected, msg)
}

// resetUnx installs a queue rebuilt by a sweep (built with
// append(ln.unexpected[:0], ...), so it aliases the backing array) and
// zeroes the vacated tail so swept frames are not pinned. Caller
// holds mu.
func (ln *lane) resetUnx(keep []Msg) {
	clearMsgs(ln.unexpected[len(keep):])
	ln.unexpected = keep
	ln.unHead = 0
}

func clearMsgs(ms []Msg) {
	for i := range ms {
		ms[i] = Msg{}
	}
}

// LaneCounters is one source lane's delivery statistics.
type LaneCounters struct {
	Delivered     uint64
	Dropped       uint64
	DupSuppressed uint64
}

type recvReq struct {
	ctx       uint32
	src, tag  int32
	seq       uint64 // posting ticket: earliest posted matches first
	reply     chan Msg
	cancelled bool
}

// NewMatcher creates a matcher over ep and starts its demux goroutine.
func NewMatcher(ep Endpoint) *Matcher {
	m := &Matcher{ep: ep, closeCh: make(chan struct{})}
	m.ingestFn = m.ingest
	m.lanes.Store(&laneTable{misc: &lane{}})
	if ri, ok := ep.(RingIngress); ok {
		if bell := ri.RingBell(); bell != nil {
			m.ri = ri
			m.bell = bell
		}
	}
	go m.demux()
	return m
}

func (m *Matcher) demux() {
	for {
		select {
		case msg, ok := <-m.ep.Recv():
			if !ok {
				m.Close()
				return
			}
			m.ingest(msg)
		case <-m.bell:
			m.pump()
		case <-m.closeCh:
			return
		}
	}
}

// pump drains the endpoint's inbound rings (if any) through ingest.
// Called inline at every receive entry point — the receiver's own
// call context consumes its rings, so the fast path needs no
// goroutine hand-off — and from demux on the ring bell for traffic
// that arrives while every receiver is parked.
func (m *Matcher) pump() {
	if m.ri != nil {
		m.ri.PumpRings(m.ingestFn)
	}
}

// parkEnter brackets a blocking wait: producers only tap the ring
// bell while a waiter is registered, so the waiter count must be
// raised before parking and — Dekker-style — the rings pumped once
// more afterwards. A frame published by a producer that read the
// count as zero is then either seen by this pump or by the producer's
// bell tap; either way it cannot strand while we sleep.
func (m *Matcher) parkEnter() {
	if m.ri != nil {
		m.ri.AddRingWaiter(1)
		m.ri.PumpRings(m.ingestFn)
	}
}

func (m *Matcher) parkExit() {
	if m.ri != nil {
		m.ri.AddRingWaiter(-1)
	}
}

// laneFor routes a source rank to its lane, growing the table on
// first contact with a new source.
func (m *Matcher) laneFor(src int32) *lane {
	t := m.lanes.Load()
	if src < 0 || src >= maxLaneSrc {
		return t.misc
	}
	if int(src) < len(t.bySrc) {
		return t.bySrc[src]
	}
	return m.growLane(int(src))
}

func (m *Matcher) growLane(src int) *lane {
	m.growMu.Lock()
	defer m.growMu.Unlock()
	t := m.lanes.Load()
	if src < len(t.bySrc) {
		return t.bySrc[src]
	}
	nt := &laneTable{bySrc: make([]*lane, src+1), misc: t.misc}
	copy(nt.bySrc, t.bySrc)
	for i := len(t.bySrc); i <= src; i++ {
		nt.bySrc[i] = &lane{}
	}
	m.lanes.Store(nt)
	return nt.bySrc[src]
}

// lockAll takes every lane lock in ascending rank order (misc last)
// with growMu held, freezing the lane set. The AnySource slow path:
// while held, no message can be filed unexpected and no competing
// receive can be posted, so scanning the lanes and registering in
// anyPend is one atomic step.
func (m *Matcher) lockAll() *laneTable {
	m.growMu.Lock()
	t := m.lanes.Load()
	for _, ln := range t.bySrc {
		//fmilint:ignore lockorder every multi-lane lock walks ascending rank order under growMu, so no two holders ever disagree on direction
		ln.mu.Lock()
	}
	t.misc.mu.Lock()
	//fmilint:ignore lockheld lockAll/unlockAll are a hand-off pair; every caller releases via unlockAll
	return t
}

func (m *Matcher) unlockAll(t *laneTable) {
	t.misc.mu.Unlock()
	for _, ln := range t.bySrc {
		ln.mu.Unlock()
	}
	m.growMu.Unlock()
}

// ingest files one inbound frame: batches are unpacked, then the
// frame passes the epoch gate and lands in its source's lane.
func (m *Matcher) ingest(msg Msg) {
	if msg.Kind == KindBatch {
		m.unbatch(msg)
		return
	}
	if m.closed.Load() {
		msg.Release()
		return
	}
	ln := m.laneFor(msg.Src)
	ln.mu.Lock()
	e := m.epoch.Load()
	switch {
	case msg.Epoch < e:
		ln.dropped++
		ln.mu.Unlock()
		msg.Release() // stale epoch: discard (paper §IV-D)
		return
	case msg.Epoch > e:
		ln.future = append(ln.future, msg)
		ln.mu.Unlock()
		return
	}
	m.matchOrQueueLane(ln, msg)
	ln.mu.Unlock()
}

// unbatch unpacks a coalesced KindBatch frame and ingests each inner
// frame — before any filtering, so epoch/view/dedup decisions apply
// to the real frames, never the container. A malformed batch is
// dropped whole.
func (m *Matcher) unbatch(b Msg) {
	parts, err := enc.UnpackBatch(b.Data)
	if err != nil {
		b.Release()
		return
	}
	for _, p := range parts {
		sub, err := decodeFrameBytes(p, b.pool)
		if err != nil {
			continue
		}
		m.ingest(sub)
	}
	b.Release()
}

// matchOrQueueLane applies view filtering and duplicate suppression,
// then hands msg to the earliest-posted matching receive — across the
// lane's posted queue and the AnySource queue — or files it
// unexpected. Caller holds ln.mu.
func (m *Matcher) matchOrQueueLane(ln *lane, msg Msg) {
	if v := m.view.Load(); v != 0 && msg.View != 0 && msg.View < v {
		// Stamped under a membership view that has since been replaced:
		// the sender had not yet observed the view change. Epoch
		// filtering already excludes almost all such traffic (every view
		// change is an epoch fence); this is the defence in depth that
		// makes stale-view delivery structurally impossible.
		ln.dropped++
		msg.Release()
		return
	}
	if m.dedup.Load() && msg.Seq != 0 {
		if int64(msg.Src) < 0 || int64(msg.Src) >= m.dedupN.Load() {
			msg.Release() // malformed source on a sequenced message
			return
		}
		if msg.Seq <= ln.seen {
			ln.dupSuppressed++
			msg.Release()
			return
		}
		ln.seen = msg.Seq
	}
	li := -1
	for i, req := range ln.pending {
		if !req.cancelled && reqMatches(req, msg) {
			li = i
			break
		}
	}
	if m.anyN.Load() > 0 {
		m.anyMu.Lock()
		ai := -1
		for i, req := range m.anyPend {
			if !req.cancelled && reqMatches(req, msg) {
				ai = i
				break
			}
		}
		if ai >= 0 && (li < 0 || m.anyPend[ai].seq < ln.pending[li].seq) {
			req := m.anyPend[ai]
			m.anyPend = append(m.anyPend[:ai], m.anyPend[ai+1:]...)
			m.anyN.Add(-1)
			ln.delivered++
			//fmilint:ignore lockheld reply has capacity 1 and a req removed from its queue gets exactly one send; holding anyMu here is what lets Await's cancel path prefer the message
			req.reply <- msg
			m.anyMu.Unlock()
			return
		}
		m.anyMu.Unlock()
	}
	if li >= 0 {
		req := ln.pending[li]
		ln.pending = append(ln.pending[:li], ln.pending[li+1:]...)
		ln.delivered++
		req.reply <- msg
		return
	}
	ln.pushUnx(msg)
}

func reqMatches(req *recvReq, msg Msg) bool {
	return req.ctx == msg.Ctx &&
		(req.src == AnySource || req.src == msg.Src) &&
		(req.tag == AnyTag || req.tag == msg.Tag)
}

// takeLane removes and returns the earliest unexpected message in ln
// matching the probe. Caller holds ln.mu. The FIFO common case (match
// at the head) is O(1) however deep the backlog: the consumed prefix
// is tracked by unHead instead of shifting the whole queue, so a
// sender that outruns its receiver cannot turn matching quadratic.
func takeLane(ln *lane, probe *recvReq) (Msg, bool) {
	un := ln.unexpected
	for i := ln.unHead; i < len(un); i++ {
		if reqMatches(probe, un[i]) {
			msg := un[i]
			// Close the gap by shifting the (usually empty) live
			// prefix up one slot, then advance the head.
			copy(un[ln.unHead+1:i+1], un[ln.unHead:i])
			un[ln.unHead] = Msg{}
			ln.unHead++
			if ln.unHead == len(un) {
				ln.unexpected = un[:0]
				ln.unHead = 0
			}
			ln.delivered++
			return msg, true
		}
	}
	return Msg{}, false
}

// takeAnyLocked scans the frozen lane set in ascending rank order
// (misc last) for the probe's match. Caller holds all lane locks.
func takeAnyLocked(t *laneTable, probe *recvReq) (Msg, bool) {
	for _, ln := range t.bySrc {
		if msg, ok := takeLane(ln, probe); ok {
			return msg, true
		}
	}
	return takeLane(t.misc, probe)
}

// Pending is a posted receive awaiting its match. MPI semantics:
// receives match arriving messages in the order they were *posted*, so
// nonblocking receives must post synchronously (PostRecv) and may
// await later.
type Pending struct {
	m       *Matcher
	req     *recvReq
	matched Msg
	done    bool
}

// PostRecv registers a receive for (ctx, src, tag); matching order
// follows posting order. The returned Pending must be Awaited.
func (m *Matcher) PostRecv(ctx uint32, src, tag int32) (*Pending, error) {
	m.pump()
	probe := recvReq{ctx: ctx, src: src, tag: tag}
	if src == AnySource {
		t := m.lockAll()
		if m.closed.Load() {
			m.unlockAll(t)
			return nil, ErrMatcherClosed
		}
		if msg, ok := takeAnyLocked(t, &probe); ok {
			m.unlockAll(t)
			return &Pending{m: m, matched: msg, done: true}, nil
		}
		req := &recvReq{ctx: ctx, src: src, tag: tag, reply: make(chan Msg, 1), seq: m.postSeq.Add(1)}
		m.anyMu.Lock()
		m.anyPend = append(m.anyPend, req)
		m.anyN.Add(1)
		m.anyMu.Unlock()
		m.unlockAll(t)
		return &Pending{m: m, req: req}, nil
	}
	ln := m.laneFor(src)
	ln.mu.Lock()
	if m.closed.Load() {
		ln.mu.Unlock()
		return nil, ErrMatcherClosed
	}
	if msg, ok := takeLane(ln, &probe); ok {
		ln.mu.Unlock()
		return &Pending{m: m, matched: msg, done: true}, nil
	}
	req := &recvReq{ctx: ctx, src: src, tag: tag, reply: make(chan Msg, 1), seq: m.postSeq.Add(1)}
	ln.pending = append(ln.pending, req)
	ln.mu.Unlock()
	return &Pending{m: m, req: req}, nil
}

// Await blocks until the posted receive matches, the cancel channel
// fires, or the matcher closes.
func (p *Pending) Await(cancel <-chan struct{}) (Msg, error) {
	if p.done {
		return p.matched, nil
	}
	m := p.m
	m.parkEnter()
	defer m.parkExit()
	select {
	case msg := <-p.req.reply:
		return msg, nil
	case <-cancel:
		if p.req.src == AnySource {
			m.anyMu.Lock()
			for i, r := range m.anyPend {
				if r == p.req {
					m.anyPend = append(m.anyPend[:i], m.anyPend[i+1:]...)
					m.anyN.Add(-1)
					break
				}
			}
			p.req.cancelled = true
			// Ingress may have matched concurrently (it sends while
			// holding anyMu); prefer the message.
			select {
			case msg := <-p.req.reply:
				m.anyMu.Unlock()
				return msg, nil
			default:
			}
			m.anyMu.Unlock()
			return Msg{}, ErrCancelled
		}
		ln := m.laneFor(p.req.src)
		ln.mu.Lock()
		p.req.cancelled = true
		// Ingress sends under the lane lock we now hold; prefer the
		// message.
		select {
		case msg := <-p.req.reply:
			ln.mu.Unlock()
			return msg, nil
		default:
		}
		ln.mu.Unlock()
		return Msg{}, ErrCancelled
	case <-m.closeCh:
		return Msg{}, ErrMatcherClosed
	}
}

// reqPool recycles posted-receive records — and their one-slot reply
// channels — for the blocking Recv fast path. A record is recycled
// only once it is provably unreferenced: matched (removed from its
// queue by ingress) or cancelled (removed here under the lock, reply
// drained). The close path leaks its record to the GC instead:
// AdvanceEpoch does not check closed, so a recycled record could
// otherwise receive a stray late message.
var reqPool = sync.Pool{New: func() any { return &recvReq{reply: make(chan Msg, 1)} }}

// Recv blocks until a message matching (ctx, src, tag) arrives, the
// cancel channel fires, or the matcher closes. src may be AnySource
// and tag may be AnyTag. This is the runtime's innermost receive: it
// bypasses the Pending wrapper and reuses request records, so a
// matched receive performs no allocation.
func (m *Matcher) Recv(ctx uint32, src, tag int32, cancel <-chan struct{}) (Msg, error) {
	m.pump()
	if src == AnySource {
		return m.recvAny(ctx, tag, cancel)
	}
	ln := m.laneFor(src)
	ln.mu.Lock()
	if m.closed.Load() {
		ln.mu.Unlock()
		return Msg{}, ErrMatcherClosed
	}
	probe := recvReq{ctx: ctx, src: src, tag: tag}
	if msg, ok := takeLane(ln, &probe); ok {
		ln.mu.Unlock()
		return msg, nil
	}
	req := reqPool.Get().(*recvReq)
	req.ctx, req.src, req.tag, req.cancelled = ctx, src, tag, false
	req.seq = m.postSeq.Add(1)
	ln.pending = append(ln.pending, req)
	ln.mu.Unlock()

	m.parkEnter()
	defer m.parkExit()
	select {
	case msg := <-req.reply:
		reqPool.Put(req)
		return msg, nil
	case <-cancel:
		ln.mu.Lock()
		for i, r := range ln.pending {
			if r == req {
				ln.pending = append(ln.pending[:i], ln.pending[i+1:]...)
				break
			}
		}
		// Ingress may have matched concurrently (it sends under the
		// lane lock we now hold); prefer the message.
		select {
		case msg := <-req.reply:
			ln.mu.Unlock()
			reqPool.Put(req)
			return msg, nil
		default:
		}
		ln.mu.Unlock()
		reqPool.Put(req)
		return Msg{}, ErrCancelled
	case <-m.closeCh:
		return Msg{}, ErrMatcherClosed
	}
}

// recvAny is Recv's AnySource slow path: all lanes locked in rank
// order for the scan-or-post step.
func (m *Matcher) recvAny(ctx uint32, tag int32, cancel <-chan struct{}) (Msg, error) {
	t := m.lockAll()
	if m.closed.Load() {
		m.unlockAll(t)
		return Msg{}, ErrMatcherClosed
	}
	probe := recvReq{ctx: ctx, src: AnySource, tag: tag}
	if msg, ok := takeAnyLocked(t, &probe); ok {
		m.unlockAll(t)
		return msg, nil
	}
	req := reqPool.Get().(*recvReq)
	req.ctx, req.src, req.tag, req.cancelled = ctx, AnySource, tag, false
	req.seq = m.postSeq.Add(1)
	m.anyMu.Lock()
	m.anyPend = append(m.anyPend, req)
	m.anyN.Add(1)
	m.anyMu.Unlock()
	m.unlockAll(t)

	m.parkEnter()
	defer m.parkExit()
	select {
	case msg := <-req.reply:
		reqPool.Put(req)
		return msg, nil
	case <-cancel:
		m.anyMu.Lock()
		for i, r := range m.anyPend {
			if r == req {
				m.anyPend = append(m.anyPend[:i], m.anyPend[i+1:]...)
				m.anyN.Add(-1)
				break
			}
		}
		select {
		case msg := <-req.reply:
			m.anyMu.Unlock()
			reqPool.Put(req)
			return msg, nil
		default:
		}
		m.anyMu.Unlock()
		reqPool.Put(req)
		return Msg{}, ErrCancelled
	case <-m.closeCh:
		return Msg{}, ErrMatcherClosed
	}
}

// TryRecv performs a non-blocking matched receive from the unexpected
// queues (an MPI_Iprobe+Recv analogue).
func (m *Matcher) TryRecv(ctx uint32, src, tag int32) (Msg, bool) {
	m.pump()
	probe := recvReq{ctx: ctx, src: src, tag: tag}
	if src == AnySource {
		t := m.lockAll()
		msg, ok := takeAnyLocked(t, &probe)
		m.unlockAll(t)
		return msg, ok
	}
	ln := m.laneFor(src)
	ln.mu.Lock()
	msg, ok := takeLane(ln, &probe)
	ln.mu.Unlock()
	return msg, ok
}

// Epoch returns the current epoch.
func (m *Matcher) Epoch() uint32 { return m.epoch.Load() }

// AdvanceEpoch moves the matcher to epoch e: queued messages older
// than e are discarded (including everything unexpected from previous
// epochs) and buffered future messages at exactly e are re-delivered.
func (m *Matcher) AdvanceEpoch(e uint32) {
	// An epoch fence is an explicit flush boundary for batching
	// transports: everything queued for the old epoch goes to the wire
	// before we start filtering against the new one.
	if f, ok := m.ep.(Flusher); ok {
		f.FlushBarrier()
	}
	for {
		cur := m.epoch.Load()
		if e <= cur {
			return
		}
		if m.epoch.CompareAndSwap(cur, e) {
			break
		}
	}
	// Sweep the lanes. A message can race the fence into a lane we
	// have already swept; it is filtered against the new epoch at
	// ingest, so the sweep and the gate agree.
	t := m.lanes.Load()
	for _, ln := range t.bySrc {
		m.sweepLaneEpoch(ln, e)
	}
	m.sweepLaneEpoch(t.misc, e)
}

func (m *Matcher) sweepLaneEpoch(ln *lane, e uint32) {
	ln.mu.Lock()
	keep := ln.unexpected[:0]
	for _, msg := range ln.unx() {
		if msg.Epoch < e {
			ln.dropped++
			msg.Release()
		} else {
			keep = append(keep, msg)
		}
	}
	ln.resetUnx(keep)
	flush := ln.future
	ln.future = nil
	var still []Msg
	for _, msg := range flush {
		switch {
		case msg.Epoch < e:
			ln.dropped++
			msg.Release()
		case msg.Epoch > e:
			still = append(still, msg)
		default:
			m.matchOrQueueLane(ln, msg)
		}
	}
	ln.future = still
	ln.mu.Unlock()
}

// AdvanceView raises the minimum acceptable membership view version:
// view-stamped messages below it are discarded on delivery. Like
// epochs, views only move forward. Messages already accepted (the
// unexpected queues, Inject carry-over) are unaffected — they were
// accepted under a view the receiver had installed at the time.
func (m *Matcher) AdvanceView(v uint64) {
	for {
		cur := m.view.Load()
		if v <= cur {
			return
		}
		if m.view.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Stats returns (delivered, dropped, duplicate-suppressed) message
// counts summed across lanes. dropped counts stale-epoch discards
// (paper §IV-D); dupSuppressed counts sequenced duplicates discarded
// by local recovery's receive-side watermarks.
func (m *Matcher) Stats() (delivered, dropped, dupSuppressed uint64) {
	t := m.lockAll()
	for _, ln := range t.bySrc {
		delivered += ln.delivered
		dropped += ln.dropped
		dupSuppressed += ln.dupSuppressed
	}
	delivered += t.misc.delivered
	dropped += t.misc.dropped
	dupSuppressed += t.misc.dupSuppressed
	m.unlockAll(t)
	return
}

// LaneStats returns the per-source counters, indexed by source rank.
// Sources the matcher never heard from report zeros; misc (negative
// source) traffic is visible only in the Stats aggregate.
func (m *Matcher) LaneStats() []LaneCounters {
	t := m.lockAll()
	out := make([]LaneCounters, len(t.bySrc))
	for i, ln := range t.bySrc {
		out[i] = LaneCounters{Delivered: ln.delivered, Dropped: ln.dropped, DupSuppressed: ln.dupSuppressed}
	}
	m.unlockAll(t)
	return out
}

// EnableDedup switches on sequenced-duplicate suppression for a world
// of n ranks. Call before any sequenced traffic arrives.
func (m *Matcher) EnableDedup(n int) {
	if n > 0 {
		m.growLane(n - 1)
	}
	m.dedup.Store(true)
	m.raiseDedupN(int64(n))
}

func (m *Matcher) raiseDedupN(n int64) {
	for {
		cur := m.dedupN.Load()
		if n <= cur {
			return
		}
		if m.dedupN.CompareAndSwap(cur, n) {
			return
		}
	}
}

// SeedSeen adopts per-source ingress watermarks: state carried over
// from the previous generation's matcher on a survivor, or restored
// from the checkpointed receive state on a respawned rank. Watermarks
// only move forward.
func (m *Matcher) SeedSeen(seen []uint64) {
	m.seedSeen(seen, false)
}

// SeedSeenPurge adopts watermarks like SeedSeen and, under the same
// lane locks, drops queued sequenced messages at or below the new
// watermarks. A re-provisioned shadow uses this when applying its
// primary's state snapshot: any copies the shadow queued before the
// snapshot was taken are already inside it (the snapshot carries the
// primary's queue), so keeping them would deliver duplicates the
// moment the dedup filter's history jumps forward.
func (m *Matcher) SeedSeenPurge(seen []uint64) {
	m.seedSeen(seen, true)
}

func (m *Matcher) seedSeen(seen []uint64, purge bool) {
	if len(seen) > 0 {
		m.growLane(len(seen) - 1)
	}
	m.dedup.Store(true)
	m.raiseDedupN(int64(len(seen)))
	t := m.lanes.Load()
	for i, s := range seen {
		ln := t.bySrc[i]
		ln.mu.Lock()
		if s > ln.seen {
			ln.seen = s
		}
		if purge {
			keep := ln.unexpected[:0]
			for _, msg := range ln.unx() {
				if msg.Seq != 0 && msg.Seq <= ln.seen {
					ln.dupSuppressed++
					msg.Release()
				} else {
					keep = append(keep, msg)
				}
			}
			ln.resetUnx(keep)
		}
		ln.mu.Unlock()
	}
}

// SeenVector returns a copy of the per-source ingress watermarks: the
// highest sequenced message accepted from each source. During replay
// negotiation this is exactly the rank's "what I already have" vector.
func (m *Matcher) SeenVector() []uint64 {
	n := int(m.dedupN.Load())
	t := m.lanes.Load()
	out := make([]uint64, n)
	for i := 0; i < n && i < len(t.bySrc); i++ {
		ln := t.bySrc[i]
		ln.mu.Lock()
		out[i] = ln.seen
		ln.mu.Unlock()
	}
	return out
}

// ResetSeen zeroes the ingress watermarks and drops queued sequenced
// messages — used when a local-recovery run falls back to a global
// (level-2) rollback, after which every rank restarts its streams from
// scratch in lockstep.
func (m *Matcher) ResetSeen() {
	t := m.lanes.Load()
	for _, ln := range t.bySrc {
		ln.mu.Lock()
		ln.seen = 0
		keep := ln.unexpected[:0]
		for _, msg := range ln.unx() {
			if msg.Seq == 0 {
				keep = append(keep, msg)
			} else {
				msg.Release()
			}
		}
		ln.resetUnx(keep)
		ln.mu.Unlock()
	}
}

// Inject appends already-accepted messages to their source lanes'
// unexpected queues, bypassing the epoch and duplicate filters (their
// sequence numbers are already covered by the seeded watermarks).
// Used to carry accepted-but-unconsumed messages across an epoch
// fence, and to restore a checkpointed queue on a respawned rank.
func (m *Matcher) Inject(msgs []Msg) {
	for _, msg := range msgs {
		ln := m.laneFor(msg.Src)
		ln.mu.Lock()
		ln.pushUnx(msg)
		ln.mu.Unlock()
	}
}

// HarvestState snapshots the duplicate-suppression state for carry-over
// or checkpointing: the seen watermarks plus the sequenced
// (data-plane) messages accepted into the unexpected queues but not
// yet consumed. The rings are pumped first so frames already
// published by co-located senders are accepted and carried across the
// fence instead of being lost with the endpoint. Unsequenced control
// messages and future-epoch buffers are excluded — the former are
// generation-private, the latter were never accepted (their sequence
// numbers are above the watermark, so a replay regenerates them). The
// returned messages have their replay flag cleared; lanes are visited
// in rank order, so the queue snapshot is deterministic.
func (m *Matcher) HarvestState() (seen []uint64, queued []Msg) {
	m.pump()
	n := int(m.dedupN.Load())
	seen = make([]uint64, n)
	t := m.lockAll()
	for i := 0; i < n && i < len(t.bySrc); i++ {
		seen[i] = t.bySrc[i].seen
	}
	for _, ln := range t.bySrc {
		live := ln.unx()
		for j := range live {
			if live[j].Seq == 0 {
				continue
			}
			live[j].Flags &^= FlagReplay
			queued = append(queued, live[j])
		}
	}
	m.unlockAll(t)
	return seen, queued
}

// Close shuts the matcher down; blocked receives return
// ErrMatcherClosed.
func (m *Matcher) Close() {
	if m.closed.CompareAndSwap(false, true) {
		close(m.closeCh)
	}
}
