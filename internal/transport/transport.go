// Package transport provides the low-level communication substrate for
// the FMI runtime: ordered, framed message delivery between process
// endpoints plus explicitly monitored connections that surface
// *disconnect events* when a peer dies or closes.
//
// Two implementations are provided:
//
//   - ChanNetwork: an in-process network built on Go channels. This is
//     the default and stands in for the low-latency InfiniBand verbs /
//     PSM path of the paper. Its Options model the only ibverbs
//     property FMI relies on: a peer's death is observed on monitored
//     connections after DetectDelay (~0.2 s on real ibverbs), and an
//     explicit close is observed after PropDelay.
//
//   - TCPNetwork: a real TCP/IP network over loopback using the net
//     package, analogous to the PMGR TCP plane of the paper.
//
// Semantics shared by both, chosen to match the paper's observations
// about PSM (§IV-C): sending to a dead peer does NOT return an error —
// the message is silently dropped. Failures are only observable through
// disconnect events on monitored connections (the log-ring overlay) or
// through the process manager. Message order is preserved per
// (sender, receiver) pair.
package transport

import (
	"errors"
	"time"

	"fmi/internal/bufpool"
)

// Addr identifies an endpoint. For ChanNetwork it is a synthetic id;
// for TCPNetwork it is the listener's host:port.
type Addr string

// NilAddr is the zero address.
const NilAddr Addr = ""

// Message kinds, carried for accounting/debugging; matching is done on
// (ctx, src, tag) by the upper layer.
const (
	KindUser byte = iota
	KindColl
	KindCkpt
	KindCtl
	// KindBatch is transport-internal: a container frame produced by
	// send-side coalescing whose payload is an enc batch of complete
	// frames (header + payload each). It is unpacked at matcher
	// ingress; upper layers never see it.
	KindBatch
)

// Msg flags.
const (
	// FlagReplay marks a message re-sent from a sender-based message
	// log during localized recovery; it carries the original sequence
	// number so receivers that already consumed the original suppress
	// the duplicate.
	FlagReplay byte = 1 << iota
)

// Msg is one framed message. Epoch is the sender's recovery epoch; the
// receiver discards messages from older epochs (paper §IV-D's stale
// message elimination). Seq, when non-zero, is the per-(sender,
// receiver) data-plane sequence number assigned by the sender's
// message log (local recovery mode); 0 marks unsequenced control
// traffic exempt from duplicate suppression.
type Msg struct {
	Src   int32  // sender's world rank
	Tag   int32  // message tag (negative tags reserved for runtime)
	Ctx   uint32 // communicator context id
	Epoch uint32 // sender's epoch
	Seq   uint64 // per-(src, dst) sequence number; 0 = unsequenced
	View  uint64 // sender's membership view version; 0 = unstamped
	Kind  byte
	Flags byte
	Data  []byte

	// pool, when non-nil, is the arena that owns Data. The transport
	// stamps it on the frame copy it makes at Send (chan) or read
	// (TCP); whoever consumes the message must end its lifecycle with
	// exactly one Release (recycle) or Detach (keep the bytes).
	pool *bufpool.Arena
}

// Release returns the message's pooled payload to its arena. Callers
// must not touch m.Data afterwards. Safe on unpooled messages (no-op).
// Call it at every point a received or queued message is consumed and
// its bytes are NOT retained: drops, duplicate suppression, reduction
// folds, sync-barrier payloads.
func (m *Msg) Release() {
	if m.pool != nil {
		m.pool.Put(m.Data)
		m.pool = nil
		m.Data = nil
	}
}

// Detach surrenders the payload to the caller: the buffer permanently
// leaves the arena economy (it will be garbage-collected, never
// reused) and is safe to retain forever. Returns m.Data. Use it when
// a payload escapes to application code or long-lived runtime state.
func (m *Msg) Detach() []byte {
	d := m.Data
	if m.pool != nil {
		m.pool.Detach(d)
		m.pool = nil
	}
	return d
}

// Errors returned by transports.
var (
	ErrClosed      = errors.New("transport: endpoint closed")
	ErrUnreachable = errors.New("transport: peer unreachable")
)

// Options configure failure-observation timing.
type Options struct {
	// DetectDelay is how long after a process dies its peers observe
	// a disconnect event on monitored connections (ibverbs observed
	// ~0.2 s in the paper; tests use ~1 ms).
	DetectDelay time.Duration
	// PropDelay is how long after an explicit Conn.Close the remote
	// side observes the disconnect (the log-ring propagation hop cost).
	PropDelay time.Duration
	// MsgDelay is a simulated one-way per-message delivery latency for
	// ChanNetwork (0 = instant delivery, the default). Sends still
	// return immediately and messages to one destination still arrive
	// in order, but each arrives MsgDelay after it was sent. It models
	// interconnect latency so that round-count differences between
	// collective algorithms are observable on the in-process substrate,
	// where delivery is otherwise free. TCPNetwork ignores it (TCP has
	// real latency).
	MsgDelay time.Duration
	// InboxCap is the buffered capacity of an endpoint inbox
	// (0 means a default of 4096).
	InboxCap int
	// Pool, when non-nil, supplies the buffer arena for frame payload
	// copies (chan Send) and frame reads (TCP). nil disables pooling:
	// every frame allocates, messages never need releasing.
	Pool *bufpool.Arena
	// DisableRings forces every ChanNetwork pair onto the channel
	// path even when sender and receiver share a node. Rings are also
	// bypassed automatically when MsgDelay > 0 (the delay queue is the
	// simulated wire; a same-node shortcut would skip it).
	DisableRings bool
	// DisableCoalesce turns off send-side batching of small frames:
	// the chan path blocks on a full ring instead of coalescing, and
	// the TCP writer emits one frame per message.
	DisableCoalesce bool
	// RingSlots is the per-pair ring capacity (rounded up to a power
	// of two; 0 means a default of 256).
	RingSlots int
	// Endpoints is a sizing hint: the number of endpoints the caller
	// expects to create on the network (0 = unknown).
	Endpoints int
}

func (o Options) inboxCap() int {
	if o.InboxCap <= 0 {
		return 4096
	}
	return o.InboxCap
}

func (o Options) ringSlots() int {
	if o.RingSlots <= 0 {
		return defaultRingSlots
	}
	return o.RingSlots
}

// Conn is a monitored connection between two endpoints. The log-ring
// overlay uses Conns purely for their disconnect events: Closed fires
// when the peer dies (after DetectDelay) or closes (after PropDelay).
type Conn interface {
	// Local and Remote return the two endpoint addresses.
	Local() Addr
	Remote() Addr
	// Closed is closed once the connection is down from this side's
	// point of view.
	Closed() <-chan struct{}
	// Close tears the connection down; the remote side observes it
	// after PropDelay. Idempotent.
	Close() error
}

// Endpoint is a process's attachment to the network.
type Endpoint interface {
	// Addr returns the endpoint's address.
	Addr() Addr
	// Send delivers m to the endpoint at 'to'. It preserves order per
	// destination, blocks only when the destination inbox is full, and
	// silently drops the message if the peer is dead or unknown
	// (matching PSM semantics). It returns ErrClosed only if this
	// endpoint itself is closed.
	Send(to Addr, m Msg) error
	// Recv returns the merged inbound message stream. The channel is
	// closed when the endpoint closes.
	Recv() <-chan Msg
	// Connect establishes a monitored connection to peer; it fails
	// with ErrUnreachable if the peer is dead.
	Connect(peer Addr) (Conn, error)
	// Accept yields incoming monitored connections.
	Accept() <-chan Conn
	// Close shuts the endpoint down gracefully.
	Close() error
}

// Flusher is optionally implemented by endpoints whose send path
// batches frames (TCPNetwork's coalescing writer). FlushBarrier
// blocks — bounded by a short internal timeout — until queued
// outbound frames have reached the wire. The Matcher invokes it at
// every epoch fence (AdvanceEpoch), making fences explicit flush
// boundaries.
type Flusher interface {
	FlushBarrier()
}

// Network creates endpoints. die, if non-nil, kills the endpoint
// abruptly when closed (the process kill channel): peers observe
// disconnects after DetectDelay and in-flight messages may be lost.
type Network interface {
	NewEndpoint(die <-chan struct{}) (Endpoint, error)
}

// NodePlacer is optionally implemented by networks that model node
// placement. An endpoint created with a node id participates in the
// intra-node fast path: pairs on the same node exchange messages over
// per-pair rings instead of the shared channel path. NewEndpoint is
// equivalent to NewEndpointOnNode(-1, die): unplaced, no rings.
type NodePlacer interface {
	NewEndpointOnNode(node int, die <-chan struct{}) (Endpoint, error)
}

// RingIngress is implemented by endpoints whose inbound traffic can
// arrive on per-pair rings in addition to the Recv channel. The
// Matcher is the intended consumer: it pumps the rings inline on
// every receive call and its demux goroutine watches RingBell for
// traffic that arrives while every receiver is parked.
type RingIngress interface {
	// RingBell returns the doorbell: a 1-slot channel that a producer
	// taps after publishing to any of the endpoint's rings. nil when
	// the endpoint was created without a node id (no rings ever).
	RingBell() <-chan struct{}
	// PumpRings drains every inbound ring, handing frames to fn in
	// per-(sender, receiver) FIFO order. It returns false without
	// calling fn when another pump is already running (the concurrent
	// pump delivers the frames; running two would reorder a pair).
	PumpRings(fn func(Msg)) bool
	// AddRingWaiter adjusts the count of receivers parked (or about
	// to park) waiting for a match. Producers tap the bell only while
	// the count is non-zero; a waiter must therefore pump once more
	// after incrementing and before parking, so a publish that read
	// the count as zero is seen by that final pump.
	AddRingWaiter(delta int32)
}
