package cluster

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSpawnAndKill(t *testing.T) {
	c := New(2)
	nd := c.Node(0)
	p, err := nd.Spawn()
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	if p.Killed() {
		t.Fatal("new proc reported killed")
	}
	p.Kill()
	if !p.Killed() {
		t.Fatal("proc not killed after Kill")
	}
	select {
	case <-p.KillCh():
	default:
		t.Fatal("KillCh not closed")
	}
	// Idempotent.
	p.Kill()
}

func TestNodeFailureKillsAllProcs(t *testing.T) {
	c := New(1)
	nd := c.Node(0)
	var procs []*Proc
	for i := 0; i < 4; i++ {
		p, err := nd.Spawn()
		if err != nil {
			t.Fatal(err)
		}
		procs = append(procs, p)
	}
	nd.Fail()
	for i, p := range procs {
		if !p.Killed() {
			t.Fatalf("proc %d survived node failure", i)
		}
	}
	if !nd.Failed() {
		t.Fatal("node not marked failed")
	}
	if _, err := nd.Spawn(); err == nil {
		t.Fatal("Spawn on failed node should error")
	}
	nd.Fail() // idempotent
}

func TestFailureCallbacks(t *testing.T) {
	c := New(2)
	var nodeFails, procDeaths atomic.Int32
	c.OnNodeFailure(func(*Node) { nodeFails.Add(1) })
	c.OnProcDeath(func(*Proc) { procDeaths.Add(1) })
	nd := c.Node(1)
	for i := 0; i < 3; i++ {
		if _, err := nd.Spawn(); err != nil {
			t.Fatal(err)
		}
	}
	nd.Fail()
	if nodeFails.Load() != 1 {
		t.Fatalf("node failure callbacks = %d, want 1", nodeFails.Load())
	}
	if procDeaths.Load() != 3 {
		t.Fatalf("proc death callbacks = %d, want 3", procDeaths.Load())
	}
}

func TestProcExit(t *testing.T) {
	c := New(1)
	p, _ := c.Node(0).Spawn()
	wantErr := errors.New("boom")
	p.Exit(wantErr)
	select {
	case <-p.DoneCh():
	case <-time.After(time.Second):
		t.Fatal("DoneCh not closed")
	}
	if p.ExitErr() != wantErr {
		t.Fatalf("ExitErr = %v, want %v", p.ExitErr(), wantErr)
	}
	p.Exit(nil) // idempotent; first wins
	if p.ExitErr() != wantErr {
		t.Fatal("Exit not idempotent")
	}
}

func TestAliveExcludesFailed(t *testing.T) {
	c := New(4)
	c.Node(2).Fail()
	alive := c.Alive()
	if len(alive) != 3 {
		t.Fatalf("alive = %d, want 3", len(alive))
	}
	for _, nd := range alive {
		if nd.ID == 2 {
			t.Fatal("failed node reported alive")
		}
	}
}

func TestResourceManagerSparePool(t *testing.T) {
	c := New(5)
	rm := NewResourceManager(c, []*Node{c.Node(3), c.Node(4)})
	if got := rm.SpareCount(); got != 2 {
		t.Fatalf("SpareCount = %d, want 2", got)
	}
	n1, err := rm.TryAllocate()
	if err != nil || n1.ID != 3 {
		t.Fatalf("TryAllocate = %v, %v; want node3", n1, err)
	}
	n2, err := rm.TryAllocate()
	if err != nil || n2.ID != 4 {
		t.Fatalf("TryAllocate = %v, %v; want node4", n2, err)
	}
	if _, err := rm.TryAllocate(); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("TryAllocate on empty pool = %v, want ErrNoNodes", err)
	}
	if rm.Allocated() != 2 {
		t.Fatalf("Allocated = %d, want 2", rm.Allocated())
	}
}

func TestResourceManagerSkipsFailedSpares(t *testing.T) {
	c := New(3)
	rm := NewResourceManager(c, []*Node{c.Node(1), c.Node(2)})
	c.Node(1).Fail()
	nd, err := rm.TryAllocate()
	if err != nil {
		t.Fatal(err)
	}
	if nd.ID != 2 {
		t.Fatalf("allocated node %d, want 2 (failed spare skipped)", nd.ID)
	}
}

func TestResourceManagerProvisions(t *testing.T) {
	c := New(1)
	rm := NewResourceManager(c, nil)
	rm.ProvisionDelay = time.Millisecond
	nd, err := rm.Allocate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if nd == nil || nd.Failed() {
		t.Fatal("provisioned node unusable")
	}
	if len(c.Nodes()) != 2 {
		t.Fatalf("cluster has %d nodes, want 2 after provisioning", len(c.Nodes()))
	}
}

func TestResourceManagerAllocateCancelled(t *testing.T) {
	c := New(1)
	rm := NewResourceManager(c, nil)
	rm.ProvisionDelay = time.Hour
	cancel := make(chan struct{})
	close(cancel)
	if _, err := rm.Allocate(cancel); err == nil {
		t.Fatal("cancelled Allocate should error")
	}
}

func TestResourceManagerNoProvision(t *testing.T) {
	c := New(1)
	rm := NewResourceManager(c, nil)
	rm.Provision = false
	if _, err := rm.Allocate(nil); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("err = %v, want ErrNoNodes", err)
	}
}

func TestInjectorScriptTimeTrigger(t *testing.T) {
	c := New(3)
	in := NewInjector(c, nil, nil, 1)
	in.SetScript([]Fault{{After: time.Millisecond, AfterLoop: -1, Node: 1}})
	in.Start()
	defer in.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for !c.Node(1).Failed() {
		if time.Now().After(deadline) {
			t.Fatal("scripted fault never fired")
		}
		time.Sleep(time.Millisecond)
	}
	if c.Node(0).Failed() || c.Node(2).Failed() {
		t.Fatal("wrong node killed")
	}
}

func TestInjectorLoopTrigger(t *testing.T) {
	c := New(2)
	locate := func(rank int) *Node { return c.Node(rank % 2) }
	in := NewInjector(c, locate, nil, 1)
	in.SetScript([]Fault{{AfterLoop: 5, Node: -1, Rank: 1}})
	in.Start()
	defer in.Stop()
	in.OnLoop(0, 4)
	if c.Node(1).Failed() {
		t.Fatal("fault fired before trigger loop")
	}
	in.OnLoop(1, 5)
	if !c.Node(1).Failed() {
		t.Fatal("loop-triggered fault did not fire")
	}
	// Script consumed: later loops fire nothing else.
	in.OnLoop(1, 6)
	if c.Node(0).Failed() {
		t.Fatal("unexpected extra fault")
	}
}

func TestInjectorProcOnly(t *testing.T) {
	c := New(1)
	nd := c.Node(0)
	p, _ := nd.Spawn()
	in := NewInjector(c, nil, nil, 1)
	in.SetScript([]Fault{{AfterLoop: 0, Node: 0, ProcOnly: true}})
	in.Start()
	defer in.Stop()
	in.OnLoop(0, 0)
	if !p.Killed() {
		t.Fatal("proc not killed")
	}
	if nd.Failed() {
		t.Fatal("ProcOnly fault failed whole node")
	}
}

func TestInjectorCorrelatedKill(t *testing.T) {
	// One event, several victims: nodes 0 and 1 drop together (plus a
	// rank-resolved extra), counted as a single fired fault.
	c := New(5)
	locate := func(rank int) *Node { return c.Node(rank + 3) }
	in := NewInjector(c, locate, nil, 1)
	in.SetScript([]Fault{{AfterLoop: 2, Node: 0, CorrelatedNodes: []int{1, 0}, CorrelatedRanks: []int{1}}})
	in.Start()
	defer in.Stop()
	in.OnLoop(0, 2)
	for _, id := range []int{0, 1, 4} {
		if !c.Node(id).Failed() {
			t.Fatalf("node %d survived the correlated fault", id)
		}
	}
	for _, id := range []int{2, 3} {
		if c.Node(id).Failed() {
			t.Fatalf("node %d wrongly killed", id)
		}
	}
	if in.Fired() != 1 {
		t.Fatalf("fired = %d, want 1 (correlated kill is one event)", in.Fired())
	}
}

func TestInjectorPoissonBlast(t *testing.T) {
	// Blast width 2: every Poisson event takes two adjacent node ids.
	c := New(8)
	in := NewInjector(c, nil, nil, 5)
	in.SetPoisson(50*time.Microsecond, 1)
	in.SetBlast(2)
	in.Start()
	deadline := time.Now().Add(5 * time.Second)
	for in.Fired() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("fault never fired")
		}
		time.Sleep(time.Millisecond)
	}
	in.Stop()
	var failed []int
	for _, nd := range c.Nodes() {
		if nd.Failed() {
			failed = append(failed, nd.ID)
		}
	}
	if len(failed) != 2 || failed[1] != failed[0]+1 {
		t.Fatalf("failed nodes = %v, want two adjacent ids", failed)
	}
}

func TestInjectorPoissonRespectsMaxKill(t *testing.T) {
	c := New(8)
	in := NewInjector(c, nil, nil, 42)
	in.SetPoisson(100*time.Microsecond, 3)
	in.Start()
	deadline := time.Now().Add(5 * time.Second)
	for in.Fired() < 3 {
		if time.Now().After(deadline) {
			t.Fatal("poisson faults too slow")
		}
		time.Sleep(time.Millisecond)
	}
	in.Stop()
	if in.Fired() != 3 {
		t.Fatalf("fired = %d, want exactly 3", in.Fired())
	}
	failed := 0
	for _, nd := range c.Nodes() {
		if nd.Failed() {
			failed++
		}
	}
	if failed != 3 {
		t.Fatalf("failed nodes = %d, want 3", failed)
	}
}

func TestInjectorEligibleFilter(t *testing.T) {
	c := New(4)
	eligible := func() []*Node { return []*Node{c.Node(3)} }
	in := NewInjector(c, nil, eligible, 7)
	in.SetPoisson(50*time.Microsecond, 1)
	in.Start()
	deadline := time.Now().Add(5 * time.Second)
	for in.Fired() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("fault never fired")
		}
		time.Sleep(time.Millisecond)
	}
	in.Stop()
	if !c.Node(3).Failed() {
		t.Fatal("eligible node not the victim")
	}
	for i := 0; i < 3; i++ {
		if c.Node(i).Failed() {
			t.Fatalf("ineligible node %d killed", i)
		}
	}
}

func TestConcurrentSpawnKill(t *testing.T) {
	c := New(4)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nd := c.Node(i % 4)
			p, err := nd.Spawn()
			if err != nil {
				return // node may have failed concurrently
			}
			if i%3 == 0 {
				p.Kill()
			} else {
				p.Exit(nil)
			}
		}(i)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.Node(i).Fail()
		}(i)
	}
	wg.Wait()
}
