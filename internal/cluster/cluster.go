// Package cluster simulates an HPC cluster: a set of compute nodes, the
// processes running on them, a resource manager holding a pool of spare
// nodes, and a failure injector that kills nodes or individual processes.
//
// It is the substrate that stands in for the physical machines, SLURM
// resource manager, and hardware failures of the paper's testbed (LLNL
// Sierra). The rest of the system observes exactly the events a real
// runtime would observe: a node fails, every process on it dies, and a
// replacement node must be obtained before the lost ranks can be
// respawned.
package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Cluster is a collection of simulated nodes. All methods are safe for
// concurrent use.
type Cluster struct {
	mu      sync.Mutex
	nodes   []*Node
	nextPID int64

	failSubs []func(*Node) // invoked (synchronously) on node failure
	killSubs []func(*Proc) // invoked (synchronously) on process death
}

// New creates a cluster with n healthy nodes named node0..node{n-1}.
func New(n int) *Cluster {
	c := &Cluster{}
	for i := 0; i < n; i++ {
		c.addNodeLocked()
	}
	return c
}

func (c *Cluster) addNodeLocked() *Node {
	id := len(c.nodes)
	nd := &Node{
		ID:      id,
		Name:    fmt.Sprintf("node%d", id),
		cluster: c,
		killCh:  make(chan struct{}),
		procs:   make(map[int64]*Proc),
	}
	c.nodes = append(c.nodes, nd)
	return nd
}

// AddNode provisions a brand-new node (e.g. delivered by the resource
// manager after the spare pool ran dry) and returns it.
func (c *Cluster) AddNode() *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addNodeLocked()
}

// Node returns the node with the given id, or nil.
func (c *Cluster) Node(id int) *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id < 0 || id >= len(c.nodes) {
		return nil
	}
	return c.nodes[id]
}

// Nodes returns a snapshot of all nodes (healthy and failed).
func (c *Cluster) Nodes() []*Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Node, len(c.nodes))
	copy(out, c.nodes)
	return out
}

// Alive returns the currently healthy nodes.
func (c *Cluster) Alive() []*Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*Node
	for _, nd := range c.nodes {
		if !nd.Failed() {
			out = append(out, nd)
		}
	}
	return out
}

// OnNodeFailure registers a callback invoked whenever a node fails.
// Callbacks run synchronously on the failing goroutine and must not
// block; transports use this to schedule disconnect events.
func (c *Cluster) OnNodeFailure(f func(*Node)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failSubs = append(c.failSubs, f)
}

// OnProcDeath registers a callback invoked whenever a process dies
// (individually or as part of a node failure).
func (c *Cluster) OnProcDeath(f func(*Proc)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.killSubs = append(c.killSubs, f)
}

func (c *Cluster) notifyNodeFailure(nd *Node) {
	c.mu.Lock()
	subs := append([]func(*Node){}, c.failSubs...)
	c.mu.Unlock()
	for _, f := range subs {
		f(nd)
	}
}

func (c *Cluster) notifyProcDeath(p *Proc) {
	c.mu.Lock()
	subs := append([]func(*Proc){}, c.killSubs...)
	c.mu.Unlock()
	for _, f := range subs {
		f(p)
	}
}

// Node is a simulated compute node. A node fails atomically: every
// process on it is killed and the node never hosts processes again
// (the resource manager replaces it with a spare).
type Node struct {
	ID      int
	Name    string
	cluster *Cluster

	mu     sync.Mutex
	failed bool
	killCh chan struct{}
	procs  map[int64]*Proc
}

// Failed reports whether the node has failed.
func (n *Node) Failed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.failed
}

// FailedCh is closed when the node fails.
func (n *Node) FailedCh() <-chan struct{} { return n.killCh }

// Spawn creates a new process on the node. It fails if the node has
// already failed.
func (n *Node) Spawn() (*Proc, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.failed {
		return nil, fmt.Errorf("cluster: node %s has failed", n.Name)
	}
	pid := atomic.AddInt64(&n.cluster.nextPID, 1)
	p := &Proc{
		PID:    pid,
		node:   n,
		killCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}
	n.procs[pid] = p
	return p, nil
}

// Procs returns a snapshot of the processes currently on the node.
func (n *Node) Procs() []*Proc {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*Proc, 0, len(n.procs))
	for _, p := range n.procs {
		out = append(out, p)
	}
	return out
}

// Fail kills the node: all resident processes die and the node is
// marked failed. Idempotent.
func (n *Node) Fail() {
	n.mu.Lock()
	if n.failed {
		n.mu.Unlock()
		return
	}
	n.failed = true
	close(n.killCh)
	procs := make([]*Proc, 0, len(n.procs))
	for _, p := range n.procs {
		procs = append(procs, p)
	}
	n.mu.Unlock()

	for _, p := range procs {
		p.Kill()
	}
	n.cluster.notifyNodeFailure(n)
}

func (n *Node) removeProc(p *Proc) {
	n.mu.Lock()
	delete(n.procs, p.PID)
	n.mu.Unlock()
}

// Proc is a simulated process: a goroutine slot with an asynchronous
// kill switch. The goroutine that executes the process body must treat
// a closed KillCh as sudden death (the fmi runtime does this by
// panicking out of every blocking call).
type Proc struct {
	PID  int64
	node *Node

	killOnce sync.Once
	killCh   chan struct{}

	doneOnce sync.Once
	doneCh   chan struct{}
	exitErr  error
	exited   atomic.Bool
}

// Node returns the node hosting the process.
func (p *Proc) Node() *Node { return p.node }

// KillCh is closed when the process is killed. Every blocking
// operation performed on behalf of the process must select on it.
func (p *Proc) KillCh() <-chan struct{} { return p.killCh }

// Killed reports whether the process has been killed.
func (p *Proc) Killed() bool {
	select {
	case <-p.killCh:
		return true
	default:
		return false
	}
}

// Kill terminates the process abruptly (SIGKILL analogue). Idempotent.
func (p *Proc) Kill() {
	p.killOnce.Do(func() {
		close(p.killCh)
		p.node.removeProc(p)
		p.node.cluster.notifyProcDeath(p)
	})
}

// Exit records a voluntary exit with the given error (nil for
// success). Idempotent; the first call wins.
func (p *Proc) Exit(err error) {
	p.doneOnce.Do(func() {
		p.exitErr = err
		p.exited.Store(true)
		p.node.removeProc(p)
		close(p.doneCh)
	})
}

// DoneCh is closed when the process exits voluntarily.
func (p *Proc) DoneCh() <-chan struct{} { return p.doneCh }

// ExitErr returns the recorded exit error; only meaningful after
// DoneCh is closed.
func (p *Proc) ExitErr() error { return p.exitErr }
