package cluster

import (
	"errors"
	"sync"
	"time"
)

// ErrNoNodes is returned by a non-blocking allocation when the spare
// pool is empty and provisioning is disabled.
var ErrNoNodes = errors.New("cluster: no spare nodes available")

// ResourceManager is a minimal SLURM stand-in. It owns a pool of spare
// nodes reserved for fault tolerance (paper §II-B: "this overhead is
// reduced if the resource manager keeps a reserve of spare nodes
// specifically for fault tolerance"). When the pool runs dry it can
// provision brand-new nodes after ProvisionDelay, modelling a job
// waiting for the resource manager to deliver replacement hardware.
type ResourceManager struct {
	mu             sync.Mutex
	cluster        *Cluster
	spares         []*Node
	ProvisionDelay time.Duration // wait simulated when the pool is empty
	Provision      bool          // whether new nodes may be created on demand
	// WaitForSpare makes Allocate block on an empty pool until AddSpare
	// delivers a node (or cancel fires) instead of provisioning a new
	// one. This is the lease path of an external spare broker (the
	// fmiserve job service): the manager never creates capacity itself;
	// it waits for the broker to inject a leased node.
	WaitForSpare bool

	allocated int           // nodes handed out (spares + provisioned)
	arrival   chan struct{} // closed and replaced on every AddSpare
}

// NewResourceManager creates a resource manager over c with the given
// nodes reserved as spares.
func NewResourceManager(c *Cluster, spares []*Node) *ResourceManager {
	return &ResourceManager{
		cluster:   c,
		spares:    append([]*Node{}, spares...),
		Provision: true,
		arrival:   make(chan struct{}),
	}
}

// SpareCount returns the number of healthy spares currently pooled.
func (rm *ResourceManager) SpareCount() int {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	n := 0
	for _, nd := range rm.spares {
		if !nd.Failed() {
			n++
		}
	}
	return n
}

// Allocated returns how many nodes the manager has handed out.
func (rm *ResourceManager) Allocated() int {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	return rm.allocated
}

// AddSpare returns a node to the spare pool (dynamic join) and wakes
// any Allocate call waiting for one.
func (rm *ResourceManager) AddSpare(nd *Node) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	rm.spares = append(rm.spares, nd)
	close(rm.arrival)
	rm.arrival = make(chan struct{})
}

// TryAllocate hands out one healthy spare without blocking. It returns
// ErrNoNodes if the pool is empty (failed spares are discarded).
func (rm *ResourceManager) TryAllocate() (*Node, error) {
	return rm.tryAllocateAvoiding(nil)
}

// tryAllocateAvoiding pops the first healthy spare whose id is not in
// avoid; skipped-but-healthy spares stay pooled (in order), failed
// ones are discarded.
func (rm *ResourceManager) tryAllocateAvoiding(avoid []int) (*Node, error) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	var kept []*Node
	var found *Node
	for i, nd := range rm.spares {
		if nd.Failed() {
			continue
		}
		avoided := false
		for _, id := range avoid {
			if nd.ID == id {
				avoided = true
				break
			}
		}
		if avoided {
			kept = append(kept, nd)
			continue
		}
		found = nd
		kept = append(kept, rm.spares[i+1:]...)
		break
	}
	rm.spares = kept
	if found == nil {
		return nil, ErrNoNodes
	}
	rm.allocated++
	return found, nil
}

// Allocate hands out a healthy node, blocking if necessary. With an
// empty pool and provisioning enabled it waits ProvisionDelay and
// creates a new node, modelling "fmirun waits until new nodes are
// allocated from the resource manager" (paper §IV-B). cancel aborts
// the wait.
func (rm *ResourceManager) Allocate(cancel <-chan struct{}) (*Node, error) {
	return rm.AllocateAvoiding(cancel)
}

// AllocateAvoiding is Allocate with placement anti-affinity: nodes
// whose ids appear in avoid are never handed out (replica recovery
// must not co-locate a replacement shadow with its rank's acting
// primary). Avoided spares remain pooled for other callers.
func (rm *ResourceManager) AllocateAvoiding(cancel <-chan struct{}, avoid ...int) (*Node, error) {
	if nd, err := rm.tryAllocateAvoiding(avoid); err == nil {
		return nd, nil
	}
	rm.mu.Lock()
	provision, delay, wait := rm.Provision, rm.ProvisionDelay, rm.WaitForSpare
	rm.mu.Unlock()
	if wait {
		// Lease path: block until an external broker injects a spare
		// via AddSpare. Several allocations may race for one arrival;
		// losers go back to waiting for the next.
		for {
			rm.mu.Lock()
			arrival := rm.arrival
			rm.mu.Unlock()
			if nd, err := rm.tryAllocateAvoiding(avoid); err == nil {
				return nd, nil
			}
			select {
			case <-arrival:
			case <-cancel:
				return nil, errors.New("cluster: allocation cancelled")
			}
		}
	}
	if !provision {
		return nil, ErrNoNodes
	}
	if delay > 0 {
		//fmilint:ignore simtime ProvisionDelay deliberately models the resource manager's wall-clock provisioning latency
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-cancel:
			return nil, errors.New("cluster: allocation cancelled")
		}
	}
	nd := rm.cluster.AddNode()
	rm.mu.Lock()
	rm.allocated++
	rm.mu.Unlock()
	return nd, nil
}
