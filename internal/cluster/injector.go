package cluster

import (
	"math"
	"math/rand"
	"sync"
	"time"
)

// Fault describes one injected failure. Exactly one trigger is used:
// After (wall-clock since Start) or AfterLoop (the fault fires when any
// rank first reports reaching that loop id via OnLoop). The target is a
// node id, or the node hosting Rank if Node < 0; CorrelatedNodes and
// CorrelatedRanks extend the blast to further victims killed in the
// same event — a correlated failure (shared PSU, rack switch) that
// takes out several members of one checkpoint group at once.
type Fault struct {
	After           time.Duration // time trigger (used if > 0 or AfterLoop < 0)
	AfterLoop       int           // loop-id trigger (used if >= 0); set to -1 for time trigger
	Node            int           // target node id; -1 to target the node hosting Rank
	Rank            int           // target rank (resolved via the Locator); used when Node < 0
	ProcOnly        bool          // kill a single process rather than the whole node
	CorrelatedNodes []int         // additional node ids killed in the same event
	CorrelatedRanks []int         // additional rank-hosting nodes killed in the same event
	// Shadow retargets a rank-targeted fault at the node hosting Rank's
	// shadow copy (replica recovery); Pair kills the rank's primary AND
	// shadow nodes in one correlated event — the unmaskable case. Both
	// resolve through the shadow Locator and are ignored (falling back
	// to the primary target) when none is installed.
	Shadow bool
	Pair   bool
}

// Locator resolves the node currently hosting an FMI rank; the runtime
// provides one so loop/rank-targeted faults can find their victim.
type Locator func(rank int) *Node

// Injector schedules and fires faults against a cluster. It supports
// a deterministic script (for tests and the Fig 13/15 experiments) and
// a Poisson process parameterised by MTBF (paper §VI-B injects
// failures with an MTBF of 1 minute).
type Injector struct {
	mu        sync.Mutex
	c         *Cluster
	locate    Locator
	shadowLoc Locator // resolves the node hosting a rank's shadow copy
	script  []Fault
	mtbf    time.Duration
	maxKill int
	blast   int // nodes killed per Poisson event (adjacent ids)
	rng     *rand.Rand
	started bool
	stopCh  chan struct{}
	fired   int
	// EligibleNodes restricts random Poisson kills to these node ids
	// (so spares and the master are not shot before joining the job).
	eligible func() []*Node
	wg       sync.WaitGroup
}

// NewInjector creates an injector for c. locate may be nil if no
// rank-targeted faults are used; eligible may be nil to target any
// alive node.
func NewInjector(c *Cluster, locate Locator, eligible func() []*Node, seed int64) *Injector {
	return &Injector{
		c:        c,
		locate:   locate,
		eligible: eligible,
		rng:      rand.New(rand.NewSource(seed)),
		stopCh:   make(chan struct{}),
		maxKill:  math.MaxInt,
	}
}

// SetShadowLocator installs the resolver for shadow-targeted faults
// (replica recovery); call before Start.
func (in *Injector) SetShadowLocator(loc Locator) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.shadowLoc = loc
}

// SetScript installs a deterministic fault schedule; call before Start.
func (in *Injector) SetScript(faults []Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.script = append([]Fault{}, faults...)
}

// SetPoisson enables random node failures with the given MTBF; at most
// maxKill failures are injected (<=0 means unlimited).
func (in *Injector) SetPoisson(mtbf time.Duration, maxKill int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.mtbf = mtbf
	if maxKill > 0 {
		in.maxKill = maxKill
	}
}

// SetBlast widens every Poisson event to kill width adjacent node ids
// at once (width <= 1 restores single-node kills). Under the block
// rank-to-node mapping adjacent nodes host members of the same
// checkpoint group, so a blast of w stresses w-loss recovery.
func (in *Injector) SetBlast(width int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.blast = width
}

// Fired returns the number of faults injected so far.
func (in *Injector) Fired() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// Start arms the time-triggered faults and the Poisson process.
func (in *Injector) Start() {
	in.mu.Lock()
	if in.started {
		in.mu.Unlock()
		return
	}
	in.started = true
	script := append([]Fault{}, in.script...)
	mtbf := in.mtbf
	in.mu.Unlock()

	for _, f := range script {
		if f.AfterLoop >= 0 && f.After == 0 {
			continue // loop-triggered; fired via OnLoop
		}
		f := f
		in.wg.Add(1)
		go func() {
			defer in.wg.Done()
			//fmilint:ignore simtime the injector's time triggers deliberately model wall-clock failure arrival against a live run
			t := time.NewTimer(f.After)
			defer t.Stop()
			select {
			case <-t.C:
				in.fire(f)
			case <-in.stopCh:
			}
		}()
	}
	if mtbf > 0 {
		in.wg.Add(1)
		go in.poissonLoop(mtbf)
	}
}

// Stop disarms all pending faults.
func (in *Injector) Stop() {
	in.mu.Lock()
	if in.stopCh != nil {
		select {
		case <-in.stopCh:
		default:
			close(in.stopCh)
		}
	}
	in.mu.Unlock()
	in.wg.Wait()
}

// OnLoop is called by the runtime when a rank completes a loop
// iteration; it fires any pending loop-triggered faults for that id.
func (in *Injector) OnLoop(rank, loopID int) {
	var due []Fault
	in.mu.Lock()
	rest := in.script[:0]
	for _, f := range in.script {
		if f.AfterLoop >= 0 && f.After == 0 && loopID >= f.AfterLoop {
			due = append(due, f)
		} else {
			rest = append(rest, f)
		}
	}
	in.script = rest
	in.mu.Unlock()
	for _, f := range due {
		in.fire(f)
	}
}

func (in *Injector) fire(f Fault) {
	in.mu.Lock()
	if in.fired >= in.maxKill {
		in.mu.Unlock()
		return
	}
	in.fired++
	in.mu.Unlock()

	victims := in.resolve(f)
	if len(victims) == 0 {
		return
	}
	if f.ProcOnly {
		procs := victims[0].Procs()
		if len(procs) > 0 {
			procs[0].Kill()
		}
		return
	}
	// All victims of a correlated fault drop in the same event, before
	// any detection or recovery can run.
	for _, nd := range victims {
		nd.Fail()
	}
}

// resolve maps a fault to its distinct, still-alive victim nodes: the
// primary target first, then the correlated ones.
func (in *Injector) resolve(f Fault) []*Node {
	var nds []*Node
	add := func(nd *Node) {
		if nd == nil || nd.Failed() {
			return
		}
		for _, have := range nds {
			if have.ID == nd.ID {
				return
			}
		}
		nds = append(nds, nd)
	}
	in.mu.Lock()
	shadowLoc := in.shadowLoc
	in.mu.Unlock()
	switch {
	case f.Node >= 0:
		add(in.c.Node(f.Node))
	case f.Pair && in.locate != nil:
		// Pair loss: primary first, shadow in the same event.
		add(in.locate(f.Rank))
		if shadowLoc != nil {
			add(shadowLoc(f.Rank))
		}
	case f.Shadow && shadowLoc != nil:
		add(shadowLoc(f.Rank))
	case in.locate != nil:
		add(in.locate(f.Rank))
	}
	for _, id := range f.CorrelatedNodes {
		add(in.c.Node(id))
	}
	if in.locate != nil {
		for _, r := range f.CorrelatedRanks {
			add(in.locate(r))
		}
	}
	return nds
}

func (in *Injector) poissonLoop(mtbf time.Duration) {
	defer in.wg.Done()
	for {
		in.mu.Lock()
		if in.fired >= in.maxKill {
			in.mu.Unlock()
			return
		}
		// Exponential inter-arrival time with mean MTBF.
		d := time.Duration(in.rng.ExpFloat64() * float64(mtbf))
		in.mu.Unlock()
		//fmilint:ignore simtime Poisson inter-arrival sleeps deliberately model wall-clock MTBF against a live run
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-in.stopCh:
			t.Stop()
			return
		}
		nd := in.pickVictim()
		if nd != nil {
			f := Fault{Node: nd.ID, AfterLoop: -1}
			in.mu.Lock()
			blast := in.blast
			in.mu.Unlock()
			for w := 1; w < blast; w++ {
				f.CorrelatedNodes = append(f.CorrelatedNodes, nd.ID+w)
			}
			in.fire(f)
		}
	}
}

func (in *Injector) pickVictim() *Node {
	var pool []*Node
	if in.eligible != nil {
		pool = in.eligible()
	} else {
		pool = in.c.Alive()
	}
	alive := pool[:0]
	for _, nd := range pool {
		if !nd.Failed() {
			alive = append(alive, nd)
		}
	}
	if len(alive) == 0 {
		return nil
	}
	in.mu.Lock()
	idx := in.rng.Intn(len(alive))
	in.mu.Unlock()
	return alive[idx]
}
