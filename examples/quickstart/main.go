// Quickstart: the minimal fault-tolerant FMI program, mirroring the
// paper's Fig 3. A checkpointed counter survives a node failure
// injected halfway through: the runtime allocates a spare node,
// respawns the lost ranks, rolls everyone back to the last in-memory
// checkpoint, and the loop continues — transparently to this code.
//
//	go run ./examples/quickstart
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"fmi"
)

const iterations = 12

func main() {
	cfg := fmi.Config{
		Ranks:              4,
		ProcsPerNode:       1,
		SpareNodes:         1,
		CheckpointInterval: 2, // checkpoint every 2nd loop
		XORGroupSize:       4,
		DetectDelay:        10 * time.Millisecond,
		Timeout:            time.Minute,
		// Kill the node hosting rank 2 once loop 5 completes.
		Faults: &fmi.FaultPlan{Script: []fmi.Fault{{AfterLoop: 5, Node: -1, Rank: 2}}},
	}

	rep, err := fmi.Run(cfg, func(env *fmi.Env) error {
		// state is the checkpoint segment: FMI_Loop captures it at the
		// checkpoint interval and restores it after a failure.
		state := make([]byte, 8)
		world := env.World()

		for {
			n := env.Loop(state) // the Fig 3 FMI_Loop call
			if n >= iterations {
				break
			}
			// One "simulation" step: everybody contributes rank+n.
			sum, err := fmi.AllreduceInt64(world, fmi.SumInt64(), int64(env.Rank()+n))
			if err != nil {
				continue // failure detected: the next Loop call recovers
			}
			binary.LittleEndian.PutUint64(state, uint64(n+1))
			if env.Rank() == 0 {
				fmt.Printf("loop %2d (epoch %d): allreduce = %3d\n", n, env.Epoch(), sum[0])
			}
			time.Sleep(10 * time.Millisecond)
		}
		return env.Finalize()
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsurvived %d failure(s) with %d recovery epoch(s); %d checkpoints written\n",
		rep.FailuresInjected, rep.Recoveries, rep.Stats.Checkpoints)
}
