// Himeno runs the paper's application study (§VI-B) interactively: the
// 19-point Jacobi pressure solver under FMI with in-memory
// checkpointing and Poisson node failures. The residual sequence is
// identical to a failure-free run — the headline transparency claim —
// and the effective GFLOPS shows the cost of running through failures.
//
//	go run ./examples/himeno
package main

import (
	"fmt"
	"log"
	"time"

	"fmi"
	"fmi/internal/himeno"
)

const (
	ranks      = 8
	nx, ny, nz = 258, 128, 128
	iterations = 200
	mtbf       = 1500 * time.Millisecond
)

func main() {
	cfg := fmi.Config{
		Ranks:        ranks,
		ProcsPerNode: 2,
		SpareNodes:   4,
		MTBF:         mtbf, // Vaidya auto-tunes the checkpoint interval
		XORGroupSize: 4,
		DetectDelay:  10 * time.Millisecond,
		Timeout:      5 * time.Minute,
		Faults:       &fmi.FaultPlan{MTBF: mtbf, MaxFailures: 2, Seed: 42},
	}

	points := (nx - 2) * (ny - 2) * (nz - 2)
	start := time.Now()
	rep, err := fmi.Run(cfg, func(env *fmi.Env) error {
		s, err := himeno.New(env.Rank(), ranks, nx, ny, nz)
		if err != nil {
			return err
		}
		for {
			it := env.Loop(s.State()) // pressure grid is the checkpoint
			if it >= iterations {
				break
			}
			gosa, err := s.Step(env.World())
			if err != nil {
				continue // recover at the next Loop
			}
			if env.Rank() == 0 && it%10 == 0 {
				fmt.Printf("iter %3d (epoch %d, interval %d): gosa = %.6e\n",
					it, env.Epoch(), env.CheckpointInterval(), gosa)
			}
		}
		return env.Finalize()
	})
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)
	gflops := float64(points) * himeno.FlopsPerPoint * iterations / wall.Seconds() / 1e9
	fmt.Printf("\n%d iterations of %dx%dx%d in %v: %.2f effective GFLOPS\n",
		iterations, nx, ny, nz, wall.Round(time.Millisecond), gflops)
	fmt.Printf("failures injected: %d, recoveries: %d, checkpoints: %d, lost iterations recomputed: %d\n",
		rep.FailuresInjected, rep.Recoveries, rep.Stats.Checkpoints, rep.Stats.LostIterations)
}
