// Pingpong reproduces the Table III workload: point-to-point latency
// (1-byte) and bandwidth (8 MB) between two ranks, comparing the FMI
// runtime against the fail-stop MPI baseline over both the in-process
// channel transport and real loopback TCP. The paper's claim is that
// FMI's fault tolerance costs nothing on the messaging fast path —
// here both run the identical engine, so the numbers land on top of
// each other.
//
//	go run ./examples/pingpong
package main

import (
	"fmt"
	"log"
	"os"

	"fmi/internal/experiments"
)

func main() {
	fmt.Println("measuring ping-pong (FMI vs MPI baseline, chan and tcp transports)...")
	rows, err := experiments.Table3()
	if err != nil {
		log.Fatal(err)
	}
	experiments.PrintTable3(os.Stdout, rows)
	fmt.Println("\npaper (Sierra, QDR InfiniBand): MPI 3.555 usec / 3.227 GB/s; FMI 3.573 usec / 3.211 GB/s")
}
