// Faulttolerant_pi estimates π by Monte Carlo across FMI ranks while
// nodes are being killed under it. Because each iteration's random
// stream is keyed by (rank, iteration) and the accumulators live in
// the checkpoint, a rolled-back iteration regenerates exactly the same
// samples — the estimate is bit-identical to a failure-free run.
//
// It also demonstrates communicator Split (paper Fig 8): ranks form
// two halves that each estimate π independently before combining.
//
//	go run ./examples/faulttolerant_pi
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"fmi"
)

const (
	ranks          = 8
	iterations     = 30
	samplesPerIter = 100000
)

func main() {
	cfg := fmi.Config{
		Ranks:              ranks,
		ProcsPerNode:       2,
		SpareNodes:         3,
		CheckpointInterval: 3,
		XORGroupSize:       4,
		DetectDelay:        10 * time.Millisecond,
		Timeout:            2 * time.Minute,
		Faults: &fmi.FaultPlan{Script: []fmi.Fault{
			{AfterLoop: 8, Node: -1, Rank: 1},
			{AfterLoop: 19, Node: -1, Rank: 6},
		}},
	}

	rep, err := fmi.Run(cfg, func(env *fmi.Env) error {
		world := env.World()
		// Split into halves (an example of transparent communicator
		// recovery: the halves keep working across failures).
		half, err := world.Split(env.Rank()%2, env.Rank())
		if err != nil {
			return err
		}
		state := make([]byte, 16) // hits, total
		for {
			n := env.Loop(state)
			if n >= iterations {
				break
			}
			hits := int64(binary.LittleEndian.Uint64(state[0:]))
			total := int64(binary.LittleEndian.Uint64(state[8:]))
			rng := rand.New(rand.NewSource(int64(env.Rank())<<32 + int64(n)))
			for i := 0; i < samplesPerIter; i++ {
				x, y := rng.Float64(), rng.Float64()
				if x*x+y*y <= 1 {
					hits++
				}
				total++
			}
			binary.LittleEndian.PutUint64(state[0:], uint64(hits))
			binary.LittleEndian.PutUint64(state[8:], uint64(total))

			// Each half estimates independently...
			hsums, err := fmi.AllreduceInt64(half, fmi.SumInt64(), hits, total)
			if err != nil {
				continue
			}
			// ...then the world combines.
			wsums, err := fmi.AllreduceInt64(world, fmi.SumInt64(), hits, total)
			if err != nil {
				continue
			}
			if env.Rank() == 0 && n%6 == 0 {
				halfPi := 4 * float64(hsums[0]) / float64(hsums[1])
				worldPi := 4 * float64(wsums[0]) / float64(wsums[1])
				fmt.Printf("iter %2d (epoch %d): half π ≈ %.6f, world π ≈ %.6f (err %.2e)\n",
					n, env.Epoch(), halfPi, worldPi, math.Abs(worldPi-math.Pi))
			}
		}
		return env.Finalize()
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nran through %d failure(s) (%d recoveries, %d spares consumed)\n",
		rep.FailuresInjected, rep.Recoveries, rep.SparesConsumed)
}
